"""Replication-aware detection (Section VIII future work).

Partition kind: replicated horizontal fragments (a fragment → sites
placement map).  Paper section: VIII ("capitalize on data replication to
increase parallelism and reduce response time").  The per-pattern skeleton
of PATDETECTS, upgraded to exploit replicas:

1. each fragment is scanned (σ-partitioned) at one replica, chosen to
   balance the per-site scan load — replication buys scan parallelism
   (and the simulation scans fragments concurrently under
   ``REPRO_WORKERS``, like the σ scans of the other algorithms);
2. pattern coordinators are chosen by *availability*: the statistic of
   site ``s`` for pattern ``l`` counts the matching tuples of every
   fragment replicated at ``s``, so fragments co-located with the
   coordinator contribute without any shipment;
3. only fragments with no replica at the coordinator ship their bucket —
   as shared-dictionary ``(x_code, y_code)`` pairs — each from the
   replica whose outgoing load is lowest.

With a single replica per fragment this degrades exactly to the
availability-blind PATDETECTS; with full replication nothing ships at all.
"""

from __future__ import annotations

from ..core import (
    CFD,
    Violation,
    ViolationReport,
    detect_constants,
    normalize,
)
from ..core.parallel import map_fragments
from ..distributed import CostBreakdown, DetectionOutcome, ShipmentLog
from ..distributed.replication import ReplicatedCluster
from ..relational import SharedPairDictionary, shared_dict_on
from . import base


def replicated_pat_detect(
    cluster: ReplicatedCluster, cfd: CFD
) -> DetectionOutcome:
    """Detect ``Vioπ(φ, D)`` over replicated horizontal fragments."""
    normalized = normalize(cfd)
    model = cluster.cost_model
    report = ViolationReport()
    log = ShipmentLog()
    stages = []
    details: dict[str, object] = {}

    # Constant CFDs: each fragment checked at one replica, no shipment —
    # one fused pass per fragment for the whole constant set.
    scan_sites = cluster.balanced_scan_assignment()
    if normalized.constants:
        for fragment in cluster.fragments:
            report.merge(
                detect_constants(
                    fragment, normalized.constants, collect_tuples=False
                )
            )

    for variable in normalized.variables:
        n_patterns = len(variable.patterns)

        # 1. balanced scans: per-site load = Σ sizes of fragments it scans.
        # Fragments are summarized concurrently (REPRO_WORKERS) and their
        # distinct projections interned into the cluster's shared
        # dictionary, cached across detections.
        shared: SharedPairDictionary = shared_dict_on(
            cluster,
            ("pairs", variable),
            lambda: SharedPairDictionary(len(variable.lhs)),
        )
        fragments = list(cluster.fragments)
        tasks = [
            (f, (variable, shared.pairs_for(f) is None))
            for f in range(len(fragments))
        ]
        summaries = map_fragments(
            cluster, fragments, base.partition_fragment_summary, tasks
        )
        fragment_counts: list[list[int]] = []
        fragment_coded: list[tuple[list[list[int]], list[tuple[int, int]]]] = []
        for f, (counts, bucket_codes, values) in enumerate(summaries):
            pairs = shared.pairs_for(f)
            if pairs is None:
                pairs = shared.translate(f, values)
            fragment_counts.append(counts)
            fragment_coded.append((bucket_codes, pairs))
        scan_load = [0] * cluster.n_sites
        for f, site in enumerate(scan_sites):
            scan_load[site] += len(cluster.fragments[f])
        scan = max(
            (model.scan_time(load) for load in scan_load if load), default=0.0
        )
        log.record_control(cluster.n_sites * (cluster.n_sites - 1))

        # 2. availability-aware coordinators
        available = [[0] * n_patterns for _ in range(cluster.n_sites)]
        for f, counts in enumerate(fragment_counts):
            for site in cluster.replicas_of(f):
                for l, count in enumerate(counts):
                    available[site][l] += count
        # pick by availability, spreading ties across sites so that full
        # replication yields per-pattern parallelism instead of one hot
        # coordinator
        pattern_totals = [
            sum(counts[l] for counts in fragment_counts)
            for l in range(n_patterns)
        ]
        assigned_load = [0] * cluster.n_sites
        coordinators = []
        for l in sorted(range(n_patterns), key=lambda l: -pattern_totals[l]):
            best = max(
                range(cluster.n_sites),
                key=lambda s: (available[s][l], -assigned_load[s], -s),
            )
            coordinators.append((l, best))
            assigned_load[best] += pattern_totals[l]
        coordinators = [
            site for _l, site in sorted(coordinators)
        ]
        details[variable.source] = coordinators

        # 3. ship only what the coordinator lacks, from the laziest replica
        schema = base.ship_projection_schema(cluster.schema, variable)
        width = len(schema)
        outgoing = [0] * cluster.n_sites
        stage_log = ShipmentLog()
        merged = [base.MergedBucket() for _ in range(n_patterns)]
        for f, counts in enumerate(fragment_counts):
            bucket_codes, pairs = fragment_coded[f]
            replicas = cluster.replicas_of(f)
            for l, count in enumerate(counts):
                if not count:
                    continue
                dest = coordinators[l]
                merged[l].rows += count
                merged[l].pairs.extend(
                    map(pairs.__getitem__, bucket_codes[l])
                )
                if dest in replicas:
                    continue  # locally available at the coordinator
                source = min(replicas, key=lambda s: (outgoing[s], s))
                outgoing[source] += count
                stage_log.ship(
                    dest,
                    source,
                    count,
                    count * width,
                    tag=f"{variable.source}#p{l}",
                    n_codes=2 * count,
                )
        transfer = model.transfer_time(stage_log.outgoing_by_source())
        log.merge(stage_log)

        # 4. per-coordinator checks, as in the unreplicated algorithms:
        # one conflict scan over each merged bucket's code pairs
        ops_per_site: dict[int, float] = {}
        for l, bucket in enumerate(merged):
            if not bucket.rows:
                continue
            for x_code in base.conflicting_x_codes(bucket.pairs):
                report.add(
                    Violation(
                        cfd=variable.source,
                        lhs_attributes=variable.lhs,
                        lhs_values=shared.x_values[x_code],
                    )
                )
            site = coordinators[l]
            ops_per_site[site] = ops_per_site.get(site, 0.0) + model.check_ops(
                bucket.rows
            )
        check = max(
            (model.check_time(ops) for ops in ops_per_site.values()),
            default=0.0,
        )
        stages.append(base.stage(scan, transfer, check))

    if not normalized.variables:
        scan = max(
            (model.scan_time(len(f)) for f in cluster.fragments), default=0.0
        )
        stages.append(base.stage(scan, 0.0, 0.0))

    return DetectionOutcome(
        algorithm="REPLICATEDPATDETECT",
        report=report,
        shipments=log,
        cost=CostBreakdown(stages=stages),
        details={"coordinators": details, "scan_sites": scan_sites},
    )
