"""Extended rules (eCFDs) on a distributed inventory — end to end.

A warehouse chain keeps stock records on one site per depot.  Its quality
rules need more than equality patterns: disjunctions ("a cold-chain item is
stored in zone C1 or C2"), negations ("non-discontinued items have a
supplier") and ranges ("bulk lots have quantity ≥ 100") — the eCFD
extension the paper's related work points to ([17]).  This example defines
such rules in the extended notation, detects violations both distributedly
and through the generated SQL (executed on sqlite3), and shows they agree.

Run with::

    python examples/inventory_rules.py
"""

import random

from repro.core import detect_violations, format_cfd, parse_cfd
from repro.core.sql import run_detection_on_sqlite, violation_sql
from repro.detect import clust_detect, pat_detect_s
from repro.partition import partition_by_attribute
from repro.relational import Relation, Schema

SCHEMA = Schema(
    "STOCK",
    ["sku", "depot", "category", "zone", "supplier", "status", "quantity"],
    key=["sku"],
)

RULES = [
    parse_cfd(
        "([category = 'cold-chain'] -> [zone = {'C1'|'C2'}])",
        name="cold-chain-zone",
    ),
    parse_cfd(
        "([status != 'discontinued'] -> [supplier != 'none'])",
        name="active-has-supplier",
    ),
    parse_cfd(
        "([category = 'bulk'] -> [quantity >= 100])",
        name="bulk-quantity",
    ),
    # classic variable CFD alongside: within a depot, a SKU's category
    # pins its zone
    parse_cfd("([depot, category] -> [zone])", name="depot-zone"),
]


def generate_stock(n: int, seed: int = 3) -> Relation:
    rng = random.Random(seed)
    depots = ["north", "south", "east"]
    zones = {"cold-chain": "C1", "bulk": "B1", "general": "G1"}
    rows = []
    for i in range(n):
        depot = rng.choice(depots)
        category = rng.choice(list(zones))
        zone = zones[category]
        supplier = f"sup{rng.randrange(5)}"
        status = "active"
        quantity = 150 if category == "bulk" else rng.randrange(1, 50)
        # inject rule violations
        roll = rng.random()
        if roll < 0.03:
            zone = "G9"
        elif roll < 0.06:
            supplier, status = "none", "active"
        elif roll < 0.09 and category == "bulk":
            quantity = rng.randrange(1, 99)
        rows.append((i, depot, category, zone, supplier, status, quantity))
    return Relation(SCHEMA, rows)


def main() -> None:
    stock = generate_stock(9000)
    print(f"{len(stock)} stock records across depots\n")
    print("Extended rules:")
    for rule in RULES:
        print(f"  {rule.name}: {format_cfd(rule)}")

    # -- centralized + SQL agreement ------------------------------------------
    report = detect_violations(stock, RULES, collect_tuples=False)
    sql_result = run_detection_on_sqlite(stock, RULES)
    ours = {(v.cfd, v.lhs_values) for v in report.violations}
    print(f"\nCentralized detection: {len(report)} violating patterns")
    for line in report.summary().splitlines():
        print(f"  {line}")
    print(f"Generated SQL on sqlite3 agrees: {sql_result == ours}")

    print("\nOne generated query (cold-chain-zone):")
    for query in violation_sql(RULES[0], "STOCK"):
        print(f"  {query}")

    # -- distributed detection --------------------------------------------------
    cluster = partition_by_attribute(stock, "depot")
    print(f"\nDistributed over {cluster.n_sites} depot sites:")
    single = pat_detect_s(cluster, RULES[3])
    print(
        f"  depot-zone via PATDETECTS: shipped {single.tuples_shipped} tuples, "
        f"agrees: {single.report.violations == detect_violations(stock, RULES[3], collect_tuples=False).violations}"
    )
    multi = clust_detect(cluster, RULES)
    print(
        f"  all rules via CLUSTDETECT: shipped {multi.tuples_shipped} tuples, "
        f"{len(multi.report)} violating patterns, agrees: "
        f"{multi.report.violations == report.violations}"
    )
    print(
        "\nNote the semantics: a predicate RHS like {'C1'|'C2'} keeps the "
        "embedded FD's pairwise requirement (two cold-chain tuples with "
        "equal LHS must also agree on zone), unlike a constant RHS which "
        "implies it — so these rules ship data for their GROUP BY part, "
        "while their membership checks run locally like constant CFDs."
    )


if __name__ == "__main__":
    main()
