"""Multi-rule audit of distributed sales records (the paper's CUST scenario).

A retailer's customer/order records are spread uniformly over eight sites.
The data steward maintains several CFDs with overlapping left-hand sides —
``(CC, AC, zip) → street`` and ``(CC, AC) → city`` — and wants all
violations with minimal traffic.  This is the Exp-5/6 setting: SEQDETECT
checks the rules one by one; CLUSTDETECT merges them (the second LHS is a
subset of the first) and ships shared tuples once.

Run with::

    python examples/sales_audit.py
"""

from repro.core import detect_violations
from repro.datagen import cust_overlapping_cfds, generate_cust
from repro.detect import clust_detect, naive_detect, seq_detect
from repro.partition import partition_uniform

N_TUPLES = 80_000
N_SITES = 8


def main() -> None:
    print(f"Generating {N_TUPLES} sales records over {N_SITES} sites ...")
    cust = generate_cust(N_TUPLES)
    cluster = partition_uniform(cust, N_SITES)

    street_cfd, city_cfd = cust_overlapping_cfds(255, 26)
    print(f"Rules: {street_cfd.name} (255 patterns), {city_cfd.name} (26 patterns)")
    print(f"Overlap: LHS({city_cfd.name}) ⊆ LHS({street_cfd.name}) -> mergeable\n")

    central = detect_violations(cust, [street_cfd, city_cfd], collect_tuples=False)
    print(f"Ground truth (centralized): {len(central)} violating patterns")
    for line in central.summary().splitlines():
        print(f"  {line}")

    print(f"\n{'algorithm':<14} {'tuples shipped':>14} {'response (s)':>13} {'correct':>8}")
    for label, outcome in (
        ("NAIVE", naive_detect(cluster, [street_cfd, city_cfd])),
        ("SEQDETECT", seq_detect(cluster, [street_cfd, city_cfd], single="rt")),
        ("CLUSTDETECT", clust_detect(cluster, [street_cfd, city_cfd], strategy="rt")),
    ):
        correct = outcome.report.violations == central.violations
        print(
            f"{label:<14} {outcome.tuples_shipped:>14} "
            f"{outcome.response_time:>13.3f} {str(correct):>8}"
        )

    clust = clust_detect(cluster, [street_cfd, city_cfd], strategy="rt")
    print(
        f"\nCLUSTDETECT merged the rules into cluster(s) "
        f"{clust.details['clusters']}: tuples matching both rules crossed "
        "the network once instead of twice."
    )


if __name__ == "__main__":
    main()
