"""Designing a vertical partition that keeps quality rules locally checkable.

The Section V scenario: the EMP relation is split column-wise across three
sites (HR holds names/addresses, telephony holds phone numbers, payroll
holds salaries).  None of the quality rules can then be checked without
shipping data.  This example:

1. diagnoses the partition with the dependency-preservation test (Prop. 7),
2. materializes a concrete two-tuple instance whose violation *no* site can
   see — the Prop. 7 witness,
3. computes the minimum augmentation (Thm. 8) making every rule locally
   checkable, and verifies the paper's own suggested augmentation, and
4. compares detection traffic before and after the refinement.

Run with::

    python examples/vertical_design.py
"""

from repro.core import detect_violations, satisfies
from repro.datagen import (
    emp_instance,
    emp_tableau_cfds,
    emp_vertical_attribute_sets,
)
from repro.detect import vertical_detect
from repro.partition import (
    VerticalPartition,
    augmentation_size,
    is_dependency_preserving,
    minimum_refinement,
    preservation_counterexample,
    unpreserved_cfds,
)


def main() -> None:
    d0 = emp_instance()
    sigma = emp_tableau_cfds()
    partition = VerticalPartition(d0.schema, emp_vertical_attribute_sets())
    print("Vertical partition of EMP (Example 1):")
    for name in partition.names:
        print(f"  {name}: {', '.join(partition.attributes_of(name))}")

    # -- 1. diagnose ----------------------------------------------------------
    preserving = is_dependency_preserving(partition, sigma)
    print(f"\nDependency preserving w.r.t. Σ0 = {{φ1, φ2, φ3}}? {preserving}")
    failing = unpreserved_cfds(partition, sigma)
    print(f"Rules not locally checkable: {[cfd.name for cfd in failing]}")

    # -- 2. the Proposition 7 witness ------------------------------------------
    phi, witness = preservation_counterexample(partition, sigma)
    print(f"\nWitness instance for {phi.name} (violation invisible at all sites):")
    print(witness.pretty())
    print(f"  witness violates {phi.name}: {not satisfies(witness, phi)}")
    cluster = partition.deploy(witness)
    for site in cluster.sites:
        local = [
            s for s in sigma
            if all(a in site.fragment.schema for a in s.attributes)
        ]
        print(
            f"  at {site.name}: {len(local)} rules expressible, "
            f"local violations: {sum(bool(detect_violations(site.fragment, s)) for s in local)}"
        )

    # -- 3. minimum refinement --------------------------------------------------
    augmentation = minimum_refinement(partition, sigma)
    print(
        f"\nMinimum augmentation (size {augmentation_size(augmentation)}): "
        f"{augmentation}"
    )
    papers_choice = {"DV1": ["CC", "salary"], "DV2": ["city"]}
    refined_paper = partition.refine(papers_choice)
    print(
        f"Paper's Example 7 augmentation {papers_choice} also preserves: "
        f"{is_dependency_preserving(refined_paper, sigma)} (same size 3)"
    )

    # -- 4. traffic before and after ---------------------------------------------
    before = vertical_detect(partition.deploy(d0), sigma)
    after = vertical_detect(partition.refine(augmentation).deploy(d0), sigma)
    central = detect_violations(d0, sigma, collect_tuples=False)
    print(
        f"\nDetection on D0: before refinement ships {before.tuples_shipped} "
        f"tuples, after ships {after.tuples_shipped} (all rules local)."
    )
    print(
        f"Both agree with centralized detection: "
        f"{before.report.violations == central.violations and after.report.violations == central.violations}"
    )


if __name__ == "__main__":
    main()
