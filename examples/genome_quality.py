"""Genome cross-reference quality audit (the paper's XREF scenario).

A bioinformatics group keeps cross-references from genes/proteins to
external databases (UniProt, RefSeq, GO, ...) distributed across sites by
reference type — the xrefH deployment of the paper's Exp-4.  Two audits
run here:

1. detect violations of the priority rules with the pattern-based
   algorithms, and
2. show how mining closed frequent patterns slashes the network traffic of
   checking a plain FD whose LHS is all wildcards (Fig. 3(e)).

Run with::

    python examples/genome_quality.py
"""

from repro.core import detect_violations
from repro.datagen import (
    ORGANISMS_XREFH,
    generate_xref,
    xref_mining_fd,
    xref_priority_cfd,
)
from repro.detect import ctr_detect, pat_detect_s
from repro.mining import instantiate_with_frequent_patterns
from repro.partition import partition_by_attribute

N_TUPLES = 60_000  # scaled-down xrefH


def main() -> None:
    print(f"Generating {N_TUPLES} human cross-references ...")
    xrefh = generate_xref(N_TUPLES, organisms=ORGANISMS_XREFH, seed=13)
    cluster = partition_by_attribute(xrefh, "info_type")
    print(f"Fragmented by reference type: {cluster.n_sites} sites")
    for site in cluster.sites:
        print(f"  {site.name:<30} {len(site.fragment):>7} tuples")

    # -- audit 1: the priority CFD ---------------------------------------------
    cfd = xref_priority_cfd(ORGANISMS_XREFH)
    central = detect_violations(xrefh, cfd, collect_tuples=False)
    outcome = pat_detect_s(cluster, cfd)
    print(
        f"\nAudit of {cfd.name}: {len(outcome.report)} violating patterns "
        f"(centralized agrees: {outcome.report.violations == central.violations})"
    )
    print(
        f"  PATDETECTS shipped {outcome.tuples_shipped} tuples; "
        f"simulated response {outcome.response_time:.3f}s"
    )

    # -- audit 2: an FD, with and without pattern mining ------------------------
    fd = xref_mining_fd()
    print(f"\nAudit of the FD {fd.name} ([db_name, object_type] -> [priority]):")
    plain = pat_detect_s(cluster, fd)
    print(
        f"  without mining: {plain.tuples_shipped} tuples shipped "
        f"(the all-wildcard tableau degenerates to a single coordinator)"
    )
    for theta in (0.05, 0.2, 0.6):
        mined = instantiate_with_frequent_patterns(cluster, fd, theta=theta)
        refined = pat_detect_s(cluster, mined.cfd)
        same = refined.report.violations == plain.report.violations
        reduction = 100.0 * (1 - refined.tuples_shipped / plain.tuples_shipped)
        print(
            f"  theta={theta:<5} mined {mined.n_mined_patterns:>3} patterns -> "
            f"{refined.tuples_shipped:>7} tuples shipped "
            f"({reduction:5.1f}% less; same violations: {same})"
        )

    print(
        "\nFrequent patterns correlate with the fragments (each external DB "
        "has a dominant reference type), so per-pattern coordinators receive "
        "their tuples mostly locally — the Fig. 3(e) effect."
    )

    # -- contrast: the single-coordinator plan on the mined CFD -----------------
    best = instantiate_with_frequent_patterns(cluster, fd, theta=0.05)
    refined = pat_detect_s(cluster, best.cfd)
    ctr = ctr_detect(cluster, best.cfd)
    print(
        f"\nOn the mined CFD, CTRDETECT still ships {ctr.tuples_shipped} tuples "
        f"to its single coordinator, vs {refined.tuples_shipped} for PATDETECTS "
        "— per-pattern coordinators are what turn the mined patterns into savings."
    )


if __name__ == "__main__":
    main()
