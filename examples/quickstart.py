"""Quickstart: the paper's running example, end to end.

Reproduces Examples 1–6 of *Detecting Inconsistencies in Distributed Data*
(Fan, Geerts, Ma, Müller; ICDE 2010) on the EMP relation of Figure 1:
define CFDs, detect violations centrally, partition the data across three
sites and compare the distributed detection algorithms.

Run with::

    python examples/quickstart.py
"""

from repro import detect_violations
from repro.datagen import (
    emp_horizontal_predicates,
    emp_instance,
    emp_tableau_cfds,
)
from repro.detect import ctr_detect, pat_detect_rt, pat_detect_s
from repro.partition import partition_by_predicates


def main() -> None:
    # -- the data and the rules (Fig. 1(a), Example 2) -----------------------
    d0 = emp_instance()
    print("The EMP relation D0 (Fig. 1a):")
    print(d0.pretty(limit=10))

    phi1, phi2, phi3 = emp_tableau_cfds()
    print("\nData quality rules (pattern tableaux of Example 2):")
    for cfd in (phi1, phi2, phi3):
        from repro import format_cfd

        print(f"  {cfd.name}: {format_cfd(cfd)}")

    # -- centralized detection (Example 1) ------------------------------------
    report = detect_violations(d0, [phi1, phi2, phi3])
    ids = sorted(key[0] for key in report.tuple_keys)
    print(f"\nCentralized detection: violating tuples {ids}")
    print(report.summary())

    # -- distribute the data (Fig. 1(b)) --------------------------------------
    predicates = emp_horizontal_predicates()
    cluster = partition_by_predicates(
        d0, list(predicates.values()), names=list(predicates)
    )
    print(f"\nHorizontal partition by title: {cluster}")

    # -- distributed detection (Examples 5 and 6) -----------------------------
    print(f"\nDetecting {phi1.name} = ([CC, zip] -> [street]) distributedly:")
    for algorithm in (ctr_detect, pat_detect_s, pat_detect_rt):
        outcome = algorithm(cluster, phi1)
        same = outcome.report.violations == detect_violations(d0, phi1).violations
        print(
            f"  {outcome.algorithm:<12} shipped {outcome.tuples_shipped} tuples, "
            f"simulated response {outcome.response_time * 1000:.2f} ms, "
            f"coordinators {outcome.details['coordinators']}, "
            f"matches centralized: {same}"
        )

    print(
        "\nAs in the paper: CTRDETECT picks S2 and ships 4 tuples; the "
        "per-pattern algorithms ship only 3 (pattern (44,_) at S2, (31,_) at S1)."
    )

    # -- constant CFDs need no shipment at all (Example 4) --------------------
    outcome = ctr_detect(cluster, phi3)
    print(
        f"\n{phi3.name} is a constant CFD: checked locally, "
        f"shipped {outcome.tuples_shipped} tuples, found "
        f"{sorted(k[0] for k in outcome.report.tuple_keys)} (t2, t3, t6)."
    )


if __name__ == "__main__":
    main()
