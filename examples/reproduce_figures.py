"""Regenerate every table/figure of the paper's evaluation (Figure 3).

Runs all nine experiments at ``REPRO_SCALE`` (default 0.1 of the paper's
dataset sizes), prints each series and saves the tables under ``results/``.

Run with::

    python examples/reproduce_figures.py            # ~minutes at scale 0.1
    REPRO_SCALE=0.02 python examples/reproduce_figures.py   # quick look
"""

import time

from repro.experiments import ALL_FIGURES, scale


def main() -> None:
    print(f"Reproducing Figure 3 at REPRO_SCALE={scale()}\n")
    for name, fn in ALL_FIGURES.items():
        start = time.time()
        result = fn()
        path = result.save("results")
        print(result.table())
        print(f"[{name}: {time.time() - start:.1f}s wall, saved to {path}]\n")


if __name__ == "__main__":
    main()
