from setuptools import find_packages, setup

setup(
    name="repro-cfd",
    version="0.2.0",
    description=(
        "Detecting CFD violations in distributed data "
        "(Fan, Geerts, Ma, Müller; ICDE 2010) — reproduction and engine"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    extras_require={
        # optional array backend: vectorized columnar encoding and the
        # fused-numpy detection engine; everything degrades gracefully to
        # the pure-Python paths without it
        "fast": ["numpy>=1.24"],
        # optional database backend of the sql detection engine; stdlib
        # sqlite3 always works, duckdb adds PRAGMA threads parallelism
        "sql": ["duckdb>=0.9"],
    },
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
