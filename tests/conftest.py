"""Shared fixtures: the engine conformance matrix.

The library carries four centralized detection engines — ``reference``
(the executable spec), ``fused`` (single-pass columnar, pure-Python folds),
``fused-numpy`` (the same pass with vectorized folds) and ``sql`` (the
plan compiled to parameterized statements inside a sqlite3/DuckDB
database).  Rather than maintaining ad-hoc per-engine copies of behavioral
tests, a test module opts into the matrix with::

    pytestmark = pytest.mark.usefixtures("detection_engine")

which reruns every test in the module once per engine, with
``REPRO_ENGINE`` exported so both the centralized dispatcher
(:func:`repro.core.detect_violations`) and the distributed detectors'
local checks (:mod:`repro.core.fused`) pick the engine up.  The
``fused-numpy`` leg skips automatically when numpy is not importable (or
is disabled via ``REPRO_NUMPY=0``), so the suite passes unchanged on a
numpy-less interpreter; the ``sql`` leg mirrors that pattern for its
*optional* backend — it always runs on stdlib sqlite3, but skips when the
environment forces ``REPRO_SQL_BACKEND=duckdb`` and duckdb is absent.
"""

import os

import pytest

from repro.core import ENGINES, duckdb_enabled
from repro.relational import numpy_enabled


@pytest.fixture(scope="module", params=ENGINES)
def detection_engine(request):
    """Run the requesting module's tests once per detection engine."""
    engine = request.param
    if engine == "fused-numpy" and not numpy_enabled():
        pytest.skip("numpy not importable (or disabled via REPRO_NUMPY=0)")
    if (
        engine == "sql"
        and os.environ.get("REPRO_SQL_BACKEND") == "duckdb"
        and not duckdb_enabled()
    ):
        pytest.skip("REPRO_SQL_BACKEND=duckdb but duckdb is not importable")
    patcher = pytest.MonkeyPatch()
    patcher.setenv("REPRO_ENGINE", engine)
    yield engine
    patcher.undo()
