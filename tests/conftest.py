"""Shared fixtures: the engine conformance matrix.

The library carries three centralized detection engines — ``reference``
(the executable spec), ``fused`` (single-pass columnar, pure-Python folds)
and ``fused-numpy`` (the same pass with vectorized folds).  Rather than
maintaining ad-hoc per-engine copies of behavioral tests, a test module
opts into the matrix with::

    pytestmark = pytest.mark.usefixtures("detection_engine")

which reruns every test in the module once per engine, with
``REPRO_ENGINE`` exported so both the centralized dispatcher
(:func:`repro.core.detect_violations`) and the distributed detectors'
local checks (:mod:`repro.core.fused`) pick the engine up.  The
``fused-numpy`` leg skips automatically when numpy is not importable (or
is disabled via ``REPRO_NUMPY=0``), so the suite passes unchanged on a
numpy-less interpreter.

The fixture is module-scoped: tests are grouped per engine, and
hypothesis-based tests in opted-in modules stay clear of the
function-scoped-fixture health check.
"""

import pytest

from repro.core import ENGINES
from repro.relational import numpy_enabled


@pytest.fixture(scope="module", params=ENGINES)
def detection_engine(request):
    """Run the requesting module's tests once per detection engine."""
    engine = request.param
    if engine == "fused-numpy" and not numpy_enabled():
        pytest.skip("numpy not importable (or disabled via REPRO_NUMPY=0)")
    patcher = pytest.MonkeyPatch()
    patcher.setenv("REPRO_ENGINE", engine)
    yield engine
    patcher.undo()
