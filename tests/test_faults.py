"""Chaos suite: deterministic fault injection and transactional sessions.

The robustness contract under test: **any single injected fault at any
order position yields either bit-identical violations after recovery or
one typed error — never a hang, never silent corruption** — and a failed
update batch leaves a resident session exactly as it was (rollback is
all-or-nothing, and ``matches_full_recompute`` still holds afterwards).

The suite runs under both scheduler modes (the CI chaos job matrixes
``REPRO_PARALLEL=thread|process``); the process legs pin tiny clusters
and short ``REPRO_POOL_TIMEOUT`` so dropped orders recover in
milliseconds, and every test runs under pytest's session timeout — a
wedged pipe fails loudly instead of hanging CI.
"""

import os

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core import (
    CFD,
    FaultPlan,
    FaultSpecError,
    PatternTuple,
    STATS,
    TransitionCounter,
    WILDCARD,
    WorkerCrashError,
    WorkerFailure,
    active_plan,
    fault_plan,
    install_fault_plan,
)
from repro.core.incremental import incremental_detect
from repro.core.parallel import _POOLS, FragmentPool, map_fragments
from repro.detect import pat_detect_s
from repro.detect.incremental import incremental_pat_s
from repro.partition import partition_uniform
from repro.relational import Relation, Schema

SCHEMA = Schema("R", ("id", "a", "b", "c"), key=("id",))

CFD_AB = CFD(["a"], ["b"], [PatternTuple([WILDCARD], [WILDCARD])], name="phi")


def _relation(n=30):
    return Relation(
        SCHEMA, [(i, i % 3, (i * 7) % 4, i % 2) for i in range(n)]
    )


def _fragment_len(fragment):
    return len(fragment)


class _Owner:
    """A stand-in cluster: just something to hang a cached pool off."""


# -- the plan itself ----------------------------------------------------------


def test_fault_plan_parse_round_trip():
    plan = FaultPlan.parse("crash@3,corrupt@7,slow@2,drop@11,latency=0.005")
    assert plan.crash == {3}
    assert plan.corrupt == {7}
    assert plan.slow == {2}
    assert plan.drop == {11}
    assert plan.latency == 0.005
    assert "crash@3" in repr(plan)
    seeded = FaultPlan.parse("seed=13,rate=0.05,kinds=crash|drop")
    assert seeded.seed == 13
    assert seeded.rate == 0.05
    assert seeded.kinds == ("crash", "drop")


@pytest.mark.parametrize(
    "spec",
    [
        "explode@3",            # unknown kind
        "crash@three",          # non-integer order
        "rate=often",           # non-float option
        "kinds=crash|explode",  # unknown kind in kinds
        "rate=1.5",             # out of range
        "crash",                # neither kind@order nor option=value
        "volume=11",            # unknown option
    ],
)
def test_fault_plan_rejects_bad_specs(spec):
    with pytest.raises(FaultSpecError):
        FaultPlan.parse(spec)


def test_fault_plan_disk_kinds_parse_on_their_own_counter():
    plan = FaultPlan.parse("torn-write@2,bit-flip@0,fsync-fail@5,crash@3")
    assert plan.disk["torn-write"] == {2}
    assert plan.disk["bit-flip"] == {0}
    assert plan.disk["fsync-fail"] == {5}
    assert plan.crash == {3}
    assert "torn-write@2" in repr(plan)
    # disk orders are an independent sequence from scheduler orders
    assert plan.next_order() == 0
    assert plan.next_disk_order() == 0
    assert plan.next_disk_order() == 1
    assert plan.next_order() == 1


def test_fault_plan_disk_entries_fire_once():
    from repro.core.faults import DiskFaultInjected, disk_failure_for

    plan = FaultPlan.parse("torn-write@1")
    assert plan.disk_fault_for(0) is None
    assert plan.disk_fault_for(1) == "torn-write"
    assert plan.disk_fault_for(1) is None  # one-shot
    plan.reset()
    assert plan.disk_fault_for(1) == "torn-write"
    # injected disk faults surface as OSError so the durability layer
    # handles them on the exact path real I/O failures take
    assert isinstance(disk_failure_for("fsync-fail", 4), OSError)
    assert issubclass(DiskFaultInjected, OSError)


def test_fault_plan_rejects_unknown_disk_kinds():
    with pytest.raises(FaultSpecError):
        FaultPlan(disk={"head-crash": [1]})


def test_fault_plan_explicit_entries_fire_once():
    plan = FaultPlan(crash=[2])
    assert plan.fault_for(0) is None
    assert plan.fault_for(2) == ("crash", plan.latency)
    # one-shot: the retried order (a fresh sequence number anyway) and
    # even a re-probe of the same number succeed
    assert plan.fault_for(2) is None
    plan.reset()
    assert plan.fault_for(2) is not None


def test_fault_plan_seeded_random_is_deterministic():
    draws = [
        [FaultPlan(rate=0.3, seed=13).fault_for(order) for order in range(200)]
        for _ in range(2)
    ]
    assert draws[0] == draws[1]
    fired = [fault for fault in draws[0] if fault is not None]
    assert fired  # rate 0.3 over 200 orders certainly fires
    other = [
        FaultPlan(rate=0.3, seed=14).fault_for(order) for order in range(200)
    ]
    assert other != draws[0]


def test_active_plan_resolution(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    install_fault_plan(None)
    assert active_plan() is None
    monkeypatch.setenv("REPRO_FAULTS", "crash@5")
    env_plan = active_plan()
    assert env_plan.crash == {5}
    assert active_plan() is env_plan  # cached: plan state must persist
    with fault_plan(FaultPlan(drop=[1])) as api_plan:
        assert active_plan() is api_plan  # API plan wins
    assert active_plan() is env_plan  # restored


# -- supervised process pool --------------------------------------------------


def _pool(n_fragments=2, workers=2):
    fragments = [
        Relation(SCHEMA, [(f * 10 + j, 0, 0, 0) for j in range(f + 1)])
        for f in range(n_fragments)
    ]
    return FragmentPool(fragments, workers=workers)


def test_pool_recovers_from_worker_crash():
    pool = _pool()
    try:
        with fault_plan(FaultPlan(crash=[0])):
            assert pool.run(_fragment_len, [(0, ()), (1, ())]) == [1, 2]
        assert pool.stats["respawns"] >= 1
        assert not pool.poisoned
        # the respawned worker keeps serving (fragments were re-placed)
        assert pool.run(_fragment_len, [(0, ()), (1, ())]) == [1, 2]
    finally:
        pool.close()


def test_pool_corruption_triggers_single_rerequest():
    pool = _pool()
    try:
        with fault_plan(FaultPlan(corrupt=[0])):
            assert pool.run(_fragment_len, [(0, ()), (1, ())]) == [1, 2]
        assert pool.stats["re_requests"] == 1
        assert pool.stats["respawns"] == 0  # the wire lied, not the worker
    finally:
        pool.close()


def test_pool_timeout_recovers_dropped_order(monkeypatch):
    monkeypatch.setenv("REPRO_POOL_TIMEOUT", "0.3")
    pool = _pool()
    try:
        with fault_plan(FaultPlan(drop=[0])):
            assert pool.run(_fragment_len, [(0, ()), (1, ())]) == [1, 2]
        assert pool.stats["timeouts"] >= 1
        assert pool.stats["respawns"] >= 1
    finally:
        pool.close()


def test_pool_slow_fault_only_delays():
    pool = _pool()
    try:
        with fault_plan(FaultPlan(slow=[0], latency=0.05)):
            assert pool.run(_fragment_len, [(0, ()), (1, ())]) == [1, 2]
        assert pool.stats["retries"] == 0
    finally:
        pool.close()


def test_exhausted_retries_raise_typed_error_and_evict(monkeypatch):
    """Satellite regression: a pool whose run() raised an infrastructure
    failure must leave every cache — no reuse of desynchronized pipes."""
    monkeypatch.setenv("REPRO_WORKERS", "2")
    monkeypatch.setenv("REPRO_PARALLEL", "process")
    monkeypatch.setenv("REPRO_POOL_RETRIES", "1")
    monkeypatch.setenv("REPRO_POOL_DEGRADE", "0")
    owner = _Owner()
    fragments = [Relation(SCHEMA, [(i, 0, 0, 0)]) for i in range(2)]
    tasks = [(0, ()), (1, ())]
    # the worker dies on the first order *and* on both recovery attempts
    with fault_plan(FaultPlan(crash=[0, 1, 2, 3])):
        with pytest.raises(WorkerCrashError):
            map_fragments(owner, fragments, _fragment_len, tasks)
    pool = getattr(owner, "_fragment_pool", None)
    assert pool is None or pool.poisoned
    assert all(not p.poisoned for p in _POOLS)
    # the next detection builds a clean pool and succeeds
    assert map_fragments(owner, fragments, _fragment_len, tasks) == [1, 1]
    assert owner._fragment_pool in _POOLS


def test_map_fragments_degrades_to_serial(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "2")
    monkeypatch.setenv("REPRO_PARALLEL", "process")
    monkeypatch.setenv("REPRO_POOL_RETRIES", "0")
    owner = _Owner()
    fragments = [Relation(SCHEMA, [(i, 0, 0, 0)]) for i in range(2)]
    tasks = [(0, ()), (1, ())]
    before = STATS["degraded_runs"]
    with fault_plan(FaultPlan(crash=[0, 1])):
        assert map_fragments(owner, fragments, _fragment_len, tasks) == [1, 1]
    assert STATS["degraded_runs"] == before + 1
    assert getattr(owner, "_fragment_pool", None) is None  # evicted


def test_thread_mode_supervision_ladder(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "2")
    monkeypatch.setenv("REPRO_PARALLEL", "thread")
    owner = _Owner()
    fragments = [Relation(SCHEMA, [(i, 0, 0, 0)]) for i in range(2)]
    tasks = [(0, ()), (1, ())]
    # bounded retry recovers in place
    with fault_plan(FaultPlan(crash=[0])):
        assert map_fragments(owner, fragments, _fragment_len, tasks) == [1, 1]
    # exhausted budget degrades to serial by default...
    monkeypatch.setenv("REPRO_POOL_RETRIES", "0")
    before = STATS["degraded_runs"]
    with fault_plan(FaultPlan(crash=[0, 1])):
        assert map_fragments(owner, fragments, _fragment_len, tasks) == [1, 1]
    assert STATS["degraded_runs"] == before + 1
    # ...and surfaces the typed failure when degradation is off
    monkeypatch.setenv("REPRO_POOL_DEGRADE", "0")
    with fault_plan(FaultPlan(drop=[0, 1])):
        with pytest.raises(WorkerFailure):
            map_fragments(owner, fragments, _fragment_len, tasks)


# -- the chaos property: any single fault, any position -----------------------


def _serial_baseline(relation, cfd):
    outcome = pat_detect_s(partition_uniform(relation, 3), cfd)
    return outcome.report.violations, outcome.report.tuple_keys


@pytest.mark.parametrize("kind", ["crash", "drop", "corrupt", "slow"])
def test_single_fault_recovers_bit_identical_process(kind, monkeypatch):
    """Process mode: every fault kind at several positions → identical."""
    monkeypatch.setenv("REPRO_WORKERS", "2")
    monkeypatch.setenv("REPRO_PARALLEL", "process")
    monkeypatch.setenv("REPRO_POOL_TIMEOUT", "0.4")
    relation = _relation(24)
    monkeypatch.setenv("REPRO_PARALLEL", "off")
    violations, keys = _serial_baseline(relation, CFD_AB)
    monkeypatch.setenv("REPRO_PARALLEL", "process")
    for position in (0, 1, 2):
        with fault_plan(FaultPlan(**{kind: [position]})):
            outcome = pat_detect_s(
                partition_uniform(relation, 3), CFD_AB
            )
        assert outcome.report.violations == violations, (kind, position)
        assert outcome.report.tuple_keys == keys, (kind, position)


@pytest.mark.parametrize("kind", ["crash", "drop", "corrupt", "slow"])
def test_single_fault_recovers_bit_identical_thread(kind, monkeypatch):
    """Thread mode: the same contract, across more positions."""
    monkeypatch.setenv("REPRO_WORKERS", "4")
    monkeypatch.setenv("REPRO_PARALLEL", "thread")
    relation = _relation(24)
    monkeypatch.setenv("REPRO_PARALLEL", "off")
    violations, keys = _serial_baseline(relation, CFD_AB)
    monkeypatch.setenv("REPRO_PARALLEL", "thread")
    for position in range(6):
        with fault_plan(FaultPlan(**{kind: [position]})):
            outcome = pat_detect_s(
                partition_uniform(relation, 3), CFD_AB
            )
        assert outcome.report.violations == violations, (kind, position)
        assert outcome.report.tuple_keys == keys, (kind, position)


def test_seeded_random_chaos_still_bit_identical(monkeypatch):
    """A 20% seeded fault rate over a whole detection changes nothing."""
    monkeypatch.setenv("REPRO_WORKERS", "4")
    monkeypatch.setenv("REPRO_PARALLEL", "thread")
    relation = _relation(24)
    monkeypatch.setenv("REPRO_PARALLEL", "off")
    violations, keys = _serial_baseline(relation, CFD_AB)
    monkeypatch.setenv("REPRO_PARALLEL", "thread")
    for seed in range(3):
        with fault_plan(FaultPlan(rate=0.2, seed=seed, latency=0.0)):
            outcome = pat_detect_s(partition_uniform(relation, 3), CFD_AB)
        assert outcome.report.violations == violations, seed
        assert outcome.report.tuple_keys == keys, seed


# -- transactional sessions ---------------------------------------------------

ATTRS = ("a", "b", "c")
VALUES = [0, 1, 2]

rows_strategy = st.lists(
    st.tuples(*[st.sampled_from(VALUES) for _ in ATTRS]),
    min_size=2,
    max_size=16,
)

SESSION_SETTINGS = settings(max_examples=25, deadline=None)


def _report_state(detector):
    report = detector.report
    return (set(report.violations), set(report.tuple_keys))


def _countdown(original, n):
    """Wrap a method to raise after ``n`` successful calls."""
    state = {"left": n}

    def wrapper(self, *args, **kwargs):
        if state["left"] <= 0:
            raise RuntimeError("injected mid-batch failure")
        state["left"] -= 1
        return original(self, *args, **kwargs)

    return wrapper


@pytest.mark.usefixtures("detection_engine")
@SESSION_SETTINGS
@given(rows_strategy, rows_strategy, st.integers(0, 6))
def test_failed_update_rolls_back_session(initial, batch, fuse):
    """Property: failed batch ⇒ session state ≡ pre-batch, and the
    session keeps matching a full recompute afterwards."""
    relation = Relation(
        SCHEMA, [(i,) + row for i, row in enumerate(initial)]
    )
    fresh = [
        (1000 + i,) + row for i, row in enumerate(batch)
    ]
    doomed = [key for key, _ in zip(range(len(initial)), range(0, 4))]
    detector = incremental_detect(relation, [CFD_AB])
    before = _report_state(detector)
    before_rows = sorted(detector.relation.rows)

    counter_add = TransitionCounter.add
    counter_bulk = TransitionCounter.add_bulk
    mp = pytest.MonkeyPatch()
    try:
        mp.setattr(TransitionCounter, "add", _countdown(counter_add, fuse))
        mp.setattr(
            TransitionCounter, "add_bulk", _countdown(counter_bulk, fuse)
        )
        try:
            detector.update(inserted=fresh, deleted=doomed)
            failed = False
        except RuntimeError:
            failed = True
    finally:
        mp.undo()

    if failed:
        # all-or-nothing: counters, group tables and the row store are
        # exactly as before the doomed batch
        assert _report_state(detector) == before
        assert sorted(detector.relation.rows) == before_rows
    # either way the session still matches a full reference recompute,
    # and cleanly re-applying the batch works
    assert detector.verify() is True
    detector.update(inserted=fresh, deleted=doomed)
    assert detector.verify() is True


def test_failed_update_rolls_back_horizontal_session():
    relation = _relation(30)
    session = incremental_pat_s(partition_uniform(relation, 3), CFD_AB)
    session.apply_updates({0: ([(100, 0, 3, 0), (101, 0, 2, 1)], [])})
    before = (set(session.report.violations), set(session.report.tuple_keys))
    before_fragments = list(session.fragments)
    before_stages = len(session._cost.stages)

    from repro.detect.incremental import _VariableState

    mp = pytest.MonkeyPatch()
    try:
        mp.setattr(
            _VariableState, "settle", _countdown(_VariableState.settle, 0)
        )
        with pytest.raises(RuntimeError, match="injected"):
            session.apply_updates(
                {1: ([(200, 1, 3, 0), (201, 1, 2, 1)], []), 2: ([], [2])}
            )
    finally:
        mp.undo()

    assert (
        set(session.report.violations), set(session.report.tuple_keys)
    ) == before
    assert session.fragments == before_fragments  # versions rolled back
    assert len(session._cost.stages) == before_stages  # no half cost entry
    assert session.verify() is True
    # the session is still live: the same round applies cleanly
    session.apply_updates(
        {1: ([(200, 1, 3, 0), (201, 1, 2, 1)], []), 2: ([], [2])}
    )
    assert session.verify() is True


def test_verify_full_and_sampled():
    # pinned to a fold engine: the test corrupts the transition counters,
    # which recompute-mode engines (reference, sql) do not maintain
    relation = _relation(40)
    detector = incremental_detect(relation, [CFD_AB], engine="fused")
    assert detector.verify() is True
    assert detector.verify(sample=10) is True
    # corrupt the maintained state: verify must notice
    detector._violations.counts.clear()
    detector._keys.counts.clear()
    assert detector.verify() is False
    assert detector.verify(sample=30) is False


def test_verify_on_distributed_session():
    session = incremental_pat_s(partition_uniform(_relation(30), 3), CFD_AB)
    assert session.verify() is True
    assert session.verify(sample=10) is True
    session._violations.counts.clear()
    session._keys.counts.clear()
    assert session.verify() is False


def test_update_after_rollback_keeps_incremental_speed_path():
    """A rollback must not silently flip the session to reference mode."""
    relation = _relation(20)
    detector = incremental_detect(relation, [CFD_AB], engine="fused")
    assert detector.engine == "fused"
    mp = pytest.MonkeyPatch()
    try:
        mp.setattr(
            TransitionCounter, "add", _countdown(TransitionCounter.add, 0)
        )
        with pytest.raises(RuntimeError):
            detector.update(inserted=[(500, 0, 3, 1)])
    finally:
        mp.undo()
    assert detector.engine == "fused"
    delta = detector.update(inserted=[(500, 0, 3, 1)])
    assert (500,) in detector.report.tuple_keys or not delta


def teardown_module(module):
    install_fault_plan(None)
    os.environ.pop("REPRO_FAULTS", None)
