"""Property-based tests: distributed detection ≡ centralized detection.

Random small instances, random CFDs (random tableaux with constants and
wildcards), random partitions — every algorithm of Section IV must return
exactly ``Vioπ(Σ, D)``, ship each tuple at most once per CFD, and never
ship anything for constant CFDs (Proposition 5).
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import (
    CFD,
    PatternIndex,
    PatternTuple,
    WILDCARD,
    detect_violations,
    normalize,
)
from repro.detect import (
    clust_detect,
    ctr_detect,
    is_constant_cfd,
    naive_detect,
    pat_detect_rt,
    pat_detect_s,
    seq_detect,
)
from repro.detect.base import partition_cluster
from repro.partition import partition_by_attribute, partition_uniform
from repro.relational import Relation, Schema

ATTRS = ("a", "b", "c", "d")
SCHEMA = Schema("R", ("id",) + ATTRS, key=("id",))
VALUES = [0, 1, 2]

rows = st.lists(
    st.tuples(*[st.sampled_from(VALUES) for _ in ATTRS]),
    min_size=0,
    max_size=24,
)


@st.composite
def relations(draw):
    body = draw(rows)
    return Relation(SCHEMA, [(i,) + r for i, r in enumerate(body)])


@st.composite
def pattern_entries(draw):
    if draw(st.booleans()):
        return WILDCARD
    return draw(st.sampled_from(VALUES))


@st.composite
def cfds(draw):
    lhs_size = draw(st.integers(1, 3))
    attrs = draw(
        st.permutations(ATTRS).map(lambda p: list(p[: lhs_size + 1]))
    )
    lhs, rhs = attrs[:-1], [attrs[-1]]
    n_patterns = draw(st.integers(1, 3))
    tableau = [
        PatternTuple(
            [draw(pattern_entries()) for _ in lhs],
            [draw(pattern_entries()) for _ in rhs],
        )
        for _ in range(n_patterns)
    ]
    return CFD(lhs, rhs, tableau, name=f"cfd{draw(st.integers(0, 10 ** 6))}")


@st.composite
def clusters(draw):
    relation = draw(relations())
    if draw(st.booleans()):
        n_sites = draw(st.integers(1, 4))
        return relation, partition_uniform(relation, n_sites)
    return relation, partition_by_attribute(relation, "a")


SETTINGS = settings(max_examples=120, deadline=None)


@SETTINGS
@given(clusters(), cfds())
def test_ctr_detect_matches_centralized(data, cfd):
    relation, cluster = data
    expected = detect_violations(relation, cfd).violations
    assert ctr_detect(cluster, cfd).report.violations == expected


@SETTINGS
@given(clusters(), cfds())
def test_pat_detect_s_matches_centralized(data, cfd):
    relation, cluster = data
    expected = detect_violations(relation, cfd).violations
    assert pat_detect_s(cluster, cfd).report.violations == expected


@SETTINGS
@given(clusters(), cfds())
def test_pat_detect_rt_matches_centralized(data, cfd):
    relation, cluster = data
    expected = detect_violations(relation, cfd).violations
    assert pat_detect_rt(cluster, cfd).report.violations == expected


@SETTINGS
@given(clusters(), st.lists(cfds(), min_size=1, max_size=3))
def test_seq_and_clust_match_centralized(data, sigma):
    relation, cluster = data
    expected = detect_violations(relation, sigma).violations
    assert seq_detect(cluster, sigma, single="s").report.violations == expected
    assert clust_detect(cluster, sigma, strategy="s").report.violations == expected
    assert clust_detect(cluster, sigma, strategy="rt").report.violations == expected


@SETTINGS
@given(clusters(), cfds())
def test_naive_matches_centralized(data, cfd):
    relation, cluster = data
    expected = detect_violations(relation, cfd).violations
    assert naive_detect(cluster, cfd).report.violations == expected


@SETTINGS
@given(clusters(), cfds())
def test_ship_at_most_once_per_cfd(data, cfd):
    """Section IV: no tuple is sent more than once, whatever it matches."""
    relation, cluster = data
    for algorithm in (ctr_detect, pat_detect_s, pat_detect_rt):
        outcome = algorithm(cluster, cfd)
        assert outcome.tuples_shipped <= len(relation)


@SETTINGS
@given(clusters(), cfds())
def test_constant_cfds_never_ship(data, cfd):
    """Proposition 5 as a property: constant CFDs are checked locally."""
    _relation, cluster = data
    constant_only = CFD(
        cfd.lhs,
        cfd.rhs,
        [
            PatternTuple(tp.lhs, [0 for _ in tp.rhs])
            for tp in cfd.tableau
        ],
        name=cfd.name,
    )
    assert is_constant_cfd(constant_only)
    for algorithm in (ctr_detect, pat_detect_s, pat_detect_rt):
        assert algorithm(cluster, constant_only).tuples_shipped == 0


@SETTINGS
@given(clusters(), cfds())
def test_sigma_buckets_are_disjoint_cover(data, cfd):
    """The σ function partitions each fragment's matching tuples (Lemma 6)."""
    relation, cluster = data
    for variable in normalize(cfd).variables:
        index = PatternIndex(variable.patterns)
        partitions, _ = partition_cluster(cluster, variable)
        lhs_pos = SCHEMA.positions(variable.lhs)
        for part in partitions:
            matching = [
                row
                for row in part.site.fragment.rows
                if index.matches_any(tuple(row[p] for p in lhs_pos))
            ]
            bucketed = sum(len(bucket) for bucket in part.buckets)
            assert bucketed == len(matching)


@SETTINGS
@given(clusters(), cfds())
def test_response_time_and_shipment_nonnegative(data, cfd):
    _relation, cluster = data
    for algorithm in (ctr_detect, pat_detect_s, pat_detect_rt):
        outcome = algorithm(cluster, cfd)
        assert outcome.response_time >= 0.0
        assert outcome.tuples_shipped >= 0


@SETTINGS
@given(clusters(), cfds())
def test_pat_s_never_ships_more_than_ctr(data, cfd):
    """Per-pattern max-stat coordinators cannot ship more than one global
    coordinator chosen by the same max-stat rule."""
    _relation, cluster = data
    ctr = ctr_detect(cluster, cfd)
    pat = pat_detect_s(cluster, cfd)
    assert pat.tuples_shipped <= ctr.tuples_shipped
