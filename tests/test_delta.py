"""Delta relations and derived column stores (`repro.relational.delta`).

The contract under test: ``Relation.insert`` / ``Relation.delete`` return
immutable versions whose derived columnar views are *equivalent to a fresh
build* — bit-identical for inserts, value-identical (with possibly stale
dictionary entries) for deletes — while the parent's caches stay frozen,
and cluster-aware stores keep shared-dictionary codes stable across
versions.
"""

import pytest

from repro.relational import (
    Relation,
    Schema,
    SharedDictionary,
    column_store,
)
from repro.relational.delta import DeltaRelation, DerivedColumnStore
from repro.relational.schema import SchemaError

SCHEMA = Schema("R", ("id", "a", "b"), key=("id",))


def base_relation():
    return Relation(
        SCHEMA,
        [(1, "x", 10), (2, "y", 20), (3, "x", 10), (4, "z", 20)],
    )


def warmed(relation):
    """Build the views a detection run would have left behind."""
    store = column_store(relation)
    store.column("a")
    store.column("b")
    store.key_column(("a", "b"))
    store.group_index(("a",))
    return store


# -- insert -------------------------------------------------------------------


def test_insert_appends_rows_and_records_provenance():
    parent = base_relation()
    child = parent.insert([(5, "x", 30), (6, "w", 10)])
    assert isinstance(child, DeltaRelation)
    assert child.delta_parent is parent
    assert child.delta_inserted == ((5, "x", 30), (6, "w", 10))
    assert child.delta_deleted == ()
    assert len(child) == 6 and len(parent) == 4


def test_insert_validates_row_width():
    with pytest.raises(SchemaError):
        base_relation().insert([(5, "x")])


def test_insert_derived_columns_match_fresh_build(monkeypatch):
    monkeypatch.setenv("REPRO_INCREMENTAL", "1")  # pin the kill-switch on
    parent = base_relation()
    warmed(parent)
    child = parent.insert([(5, "w", 10), (6, "x", 99)])
    derived = column_store(child)
    assert isinstance(derived, DerivedColumnStore)
    fresh = column_store(Relation(SCHEMA, child.rows))
    for attribute in ("a", "b"):
        assert derived.column(attribute).codes == fresh.column(attribute).codes
        assert derived.column(attribute).values == fresh.column(attribute).values
    assert derived.key_column(("a", "b")).codes == fresh.key_column(("a", "b")).codes
    assert derived.key_column(("a", "b")).values == fresh.key_column(("a", "b")).values
    assert derived.group_index(("a",)) == fresh.group_index(("a",))


def test_insert_leaves_parent_caches_frozen():
    parent = base_relation()
    store = warmed(parent)
    before_codes = list(store.column("a").codes)
    before_values = list(store.column("a").values)
    child = parent.insert([(5, "brand-new", 1)])
    column_store(child).column("a")
    assert store.column("a").codes == before_codes
    assert store.column("a").values == before_values


def test_insert_chain_derives_transitively():
    parent = base_relation()
    warmed(parent)
    v1 = parent.insert([(5, "w", 10)])
    v2 = v1.insert([(6, "x", 40)])
    fresh = column_store(Relation(SCHEMA, v2.rows))
    assert column_store(v2).column("a").codes == fresh.column("a").codes


# -- delete -------------------------------------------------------------------


def test_delete_by_keys_and_provenance():
    parent = base_relation()
    child = parent.delete([2, 4])
    assert child.delta_deleted == ((2, "y", 20), (4, "z", 20))
    assert [row[0] for row in child.rows] == [1, 3]


def test_delete_accepts_key_tuples_and_predicates():
    parent = base_relation()
    assert len(parent.delete([(1,), (3,)])) == 2
    assert len(parent.delete(lambda row, schema: row[2] >= 20)) == 2


def test_delete_bag_semantics_removes_duplicates_together():
    relation = Relation(SCHEMA, [(1, "x", 1), (1, "y", 2), (2, "z", 3)])
    child = relation.delete([1])
    assert len(child) == 1
    assert child.delta_deleted == ((1, "x", 1), (1, "y", 2))


def test_delete_rejects_misshapen_keys():
    with pytest.raises(SchemaError):
        base_relation().delete([(1, 2)])


def test_delete_derived_views_decode_like_fresh_build():
    parent = base_relation()
    warmed(parent)
    child = parent.delete([2])
    derived = column_store(child)
    fresh = column_store(Relation(SCHEMA, child.rows))
    for attribute in ("a", "b"):
        got = derived.column(attribute)
        want = fresh.column(attribute)
        assert [got.values[c] for c in got.codes] == [
            want.values[c] for c in want.codes
        ]
    # composite key columns compact, so they match a fresh build exactly
    assert derived.key_column(("a", "b")).codes == fresh.key_column(("a", "b")).codes
    assert derived.key_column(("a", "b")).values == fresh.key_column(("a", "b")).values


def test_delete_group_index_has_no_empty_buckets():
    parent = Relation(SCHEMA, [(1, "only", 1), (2, "x", 2), (3, "x", 3)])
    store = column_store(parent)
    store.column("a")
    store.group_index(("a",))
    child = parent.delete([1])
    index = column_store(child).group_index(("a",))
    assert ("only",) not in index
    assert all(ids for ids in index.values())


def test_delete_then_insert_round_trip_matches_fresh():
    parent = base_relation()
    warmed(parent)
    v1 = parent.delete([3])
    v2 = v1.insert([(7, "x", 10), (8, "q", 5)])
    derived = column_store(v2)
    fresh = column_store(Relation(SCHEMA, v2.rows))
    got = derived.key_column(("a", "b"))
    want = fresh.key_column(("a", "b"))
    assert [got.values[c] for c in got.codes] == [
        want.values[c] for c in want.codes
    ]
    assert derived.group_index(("a", "b")) == fresh.group_index(("a", "b"))


def test_noop_updates_return_self():
    """``insert([])`` / ``delete([])`` are no-ops: no DeltaRelation, no
    row-list copy — the parent object itself comes back."""
    parent = base_relation()
    assert parent.insert([]) is parent
    assert parent.insert(iter(())) is parent
    assert parent.delete([]) is parent
    assert parent.delete(iter(())) is parent
    # a predicate delete always scans, but matching nothing still yields
    # an empty-delta version (provenance semantics unchanged)
    child = parent.delete(lambda row, schema: False)
    assert child is not parent and child.delta_deleted == ()


def test_delete_everything_and_nothing():
    parent = base_relation()
    warmed(parent)
    nothing = parent.delete([99])
    assert len(nothing) == 4 and nothing.delta_deleted == ()
    everything = parent.delete(lambda row, schema: True)
    assert len(everything) == 0
    assert len(everything.delta_deleted) == 4
    assert column_store(everything).column("a").codes == []


# -- relational operators on delta versions -----------------------------------


def test_operators_work_on_delta_relations():
    parent = base_relation()
    warmed(parent)
    child = parent.delete([2]).insert([(9, "x", 10)])
    assert child.group_by(("a",))[("x",)] == [
        (1, "x", 10), (3, "x", 10), (9, "x", 10)
    ]
    projected = child.project(("a",), dedupe=True)
    assert set(projected.rows) == {("x",), ("z",)}


# -- environment opt-out ------------------------------------------------------


def test_repro_incremental_zero_disables_derivation(monkeypatch):
    monkeypatch.setenv("REPRO_INCREMENTAL", "0")
    parent = base_relation()
    warmed(parent)
    child = parent.insert([(5, "w", 10)])
    assert isinstance(child, DeltaRelation)  # provenance still recorded
    assert not isinstance(column_store(child), DerivedColumnStore)
    fresh = column_store(Relation(SCHEMA, child.rows))
    assert column_store(child).column("a").codes == fresh.column("a").codes


def test_numpy_opt_out_matches_numpy_path(monkeypatch):
    parent = base_relation()
    warmed(parent)
    with_numpy = column_store(parent.delete([2]).insert([(5, "w", 7)]))
    snapshot = {
        attr: (
            list(with_numpy.column(attr).codes),
            [with_numpy.column(attr).values[c] for c in with_numpy.column(attr).codes],
        )
        for attr in ("a", "b")
    }
    monkeypatch.setenv("REPRO_NUMPY", "0")
    parent2 = base_relation()
    warmed(parent2)
    without = column_store(parent2.delete([2]).insert([(5, "w", 7)]))
    for attr in ("a", "b"):
        decoded = [without.column(attr).values[c] for c in without.column(attr).codes]
        assert decoded == snapshot[attr][1]


# -- shared (cluster-aware) stores --------------------------------------------


def test_shared_store_codes_stay_stable_across_versions(monkeypatch):
    monkeypatch.setenv("REPRO_INCREMENTAL", "1")  # pin the kill-switch on
    shared = SharedDictionary()
    parent = base_relation()
    parent_store = shared.store_for(parent)
    parent_codes = list(parent_store.column("a").codes)
    child = parent.insert([(5, "brand-new", 1)])
    child_store = shared.store_for(child)
    assert isinstance(child_store, DerivedColumnStore)
    child_codes = child_store.column("a").codes
    # the parent's rows keep their exact global codes in the child
    assert child_codes[: len(parent_codes)] == parent_codes
    # and the new value extends the global table, never renumbering it
    table = shared.column("a")
    assert table.values[child_codes[-1]] == "brand-new"
    assert parent_store.column("a").codes == parent_codes


def test_shared_store_delete_filters_codes():
    shared = SharedDictionary()
    parent = base_relation()
    shared.store_for(parent).column("a")
    child = parent.delete([1])
    child_store = shared.store_for(child)
    decoded = [
        child_store.column("a").values[c] for c in child_store.column("a").codes
    ]
    assert decoded == [row[1] for row in child.rows]


# -- provenance pruning -------------------------------------------------------


def test_prune_delta_history_severs_chain_and_keeps_rows():
    from repro.relational.delta import prune_delta_history

    parent = base_relation()
    warmed(parent)
    child = parent.delete([2]).insert([(9, "x", 10)])
    rows_before = list(child.rows)
    prune_delta_history(child.delta_parent)
    prune_delta_history(child)
    assert child.delta_parent is None
    assert child.delta_inserted == () and child.delta_deleted == ()
    assert child.rows == rows_before
    # severed stores fall back to fresh builds, still correct
    fresh = column_store(Relation(SCHEMA, child.rows))
    got = column_store(child).column("a")
    assert [got.values[c] for c in got.codes] == [
        fresh.column("a").values[c] for c in fresh.column("a").codes
    ]


def test_prune_tolerates_plain_relations_and_none():
    from repro.relational.delta import prune_delta_history

    prune_delta_history(None)
    prune_delta_history(base_relation())  # no-op, no error


def test_incremental_updates_do_not_accumulate_history():
    from repro.core import IncrementalDetector, CFD, PatternTuple, WILDCARD

    cfd = CFD(("a",), ("b",), [PatternTuple((WILDCARD,), (WILDCARD,))])
    detector = IncrementalDetector([cfd])
    detector.attach(base_relation())
    for i in range(10):
        detector.update(inserted=[(100 + i, "x", i)], deleted=[100 + i - 1] if i else [])
    # the session keeps at most the current snapshot; key-batch updates go
    # through the keyed row store, so no version chain exists at all, and
    # predicate-path versions are pruned — either way no history survives
    assert getattr(detector.relation, "delta_parent", None) is None
    chain = 0
    version = detector.relation
    while getattr(version, "delta_parent", None) is not None:
        version = version.delta_parent
        chain += 1
    assert chain == 0
