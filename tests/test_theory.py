"""Tests for the complexity module: solvers, brute-force optima, reductions."""

import itertools

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core import parse_cfd
from repro.detect import ctr_detect, pat_detect_s
from repro.partition import (
    augmentation_size,
    is_dependency_preserving,
    minimum_refinement,
    partition_uniform,
)
from repro.relational import Relation, Schema
from repro.theory import (
    HittingSetInstance,
    SetCoverError,
    SetCoverInstance,
    greedy_hitting_set,
    greedy_set_cover,
    has_cover_of_size,
    hitting_set_size,
    is_hitting_set,
    locally_checkable_after,
    minimum_hitting_set,
    minimum_set_cover,
    minimum_shipment_count,
    minimum_shipments,
    set_cover_size,
    theorem1_cover_shipments,
    theorem1_reduction,
    theorem2_reduction,
    theorem3_reduction,
    theorem4_reduction,
    theorem8_reduction,
)

# -- set cover ------------------------------------------------------------


def test_minimum_set_cover_simple():
    cover = minimum_set_cover(
        {1, 2, 3, 4, 5}, {"a": {1, 2, 3}, "b": {4, 5}, "c": {1, 4}, "d": {5}}
    )
    assert sorted(cover) == ["a", "b"]


def test_set_cover_requires_coverage():
    with pytest.raises(SetCoverError):
        minimum_set_cover({1, 2}, {"a": {1}})


def test_empty_universe_needs_nothing():
    assert minimum_set_cover(set(), {"a": {1}}) == []


def test_has_cover_of_size():
    subsets = {"a": {1, 2}, "b": {2, 3}, "c": {3, 1}}
    assert has_cover_of_size({1, 2, 3}, subsets, 2)
    assert not has_cover_of_size({1, 2, 3}, subsets, 1)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.frozensets(st.integers(0, 7), min_size=1, max_size=4),
        min_size=1,
        max_size=6,
    )
)
def test_exact_cover_optimal_vs_enumeration(subsets):
    universe = frozenset().union(*subsets)
    exact = minimum_set_cover(universe, subsets)
    assert frozenset().union(*(subsets[i] for i in exact)) == universe
    # no strictly smaller cover exists
    for size in range(len(exact)):
        for combo in itertools.combinations(range(len(subsets)), size):
            assert frozenset().union(*(subsets[i] for i in combo), frozenset()) != universe


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.frozensets(st.integers(0, 7), min_size=1, max_size=4),
        min_size=1,
        max_size=6,
    )
)
def test_greedy_cover_is_a_cover_and_not_smaller_than_exact(subsets):
    universe = frozenset().union(*subsets)
    greedy = greedy_set_cover(universe, subsets)
    assert frozenset().union(*(subsets[i] for i in greedy)) == universe
    assert len(greedy) >= set_cover_size(universe, subsets)


# -- hitting set ----------------------------------------------------------


def test_minimum_hitting_set_triangle():
    collection = [("a", "b"), ("b", "c"), ("a", "c")]
    hit = minimum_hitting_set("abc", collection)
    assert len(hit) == 2
    assert is_hitting_set(hit, collection)


def test_hitting_set_single_element_everywhere():
    collection = [("a", "b"), ("a", "c"), ("a",)]
    assert minimum_hitting_set("abc", collection) == ["a"]


def test_greedy_hitting_set_hits():
    collection = [("a", "b"), ("c", "d"), ("b", "c")]
    hit = greedy_hitting_set("abcd", collection)
    assert is_hitting_set(hit, collection)
    assert len(hit) >= hitting_set_size("abcd", collection)


def test_empty_collection():
    assert minimum_hitting_set("abc", []) == []


# -- brute-force optimum shipments -----------------------------------------

S = Schema("R", ["id", "a", "b"], key=["id"])


def two_site_cluster(rows1, rows2):
    from repro.distributed import Cluster, Site

    return Cluster(
        [Site(0, Relation(S, rows1)), Site(1, Relation(S, rows2))]
    )


def test_locally_checkable_no_cross_site_conflicts():
    cluster = two_site_cluster([(1, 1, "x"), (2, 1, "y")], [(3, 2, "z")])
    fd = parse_cfd("([a] -> [b])")
    assert locally_checkable_after(cluster, [fd], [])


def test_minimum_shipment_one_move_for_one_conflict():
    cluster = two_site_cluster([(1, 1, "x")], [(2, 1, "y")])
    fd = parse_cfd("([a] -> [b])")
    assert not locally_checkable_after(cluster, [fd], [])
    assert minimum_shipment_count(cluster, [fd]) == 1


def test_minimum_shipment_zero_when_clean():
    cluster = two_site_cluster([(1, 1, "x")], [(2, 2, "y")])
    fd = parse_cfd("([a] -> [b])")
    assert minimum_shipment_count(cluster, [fd]) == 0


def test_minimum_shipments_respects_max_size():
    cluster = two_site_cluster(
        [(1, 1, "x"), (2, 2, "x")], [(3, 1, "y"), (4, 2, "y")]
    )
    fd = parse_cfd("([a] -> [b])")
    within_one = minimum_shipments(cluster, [fd], max_size=1)
    # two independent conflicts: one shipment cannot reveal both
    assert within_one is None
    assert minimum_shipment_count(cluster, [fd]) == 2


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 1), st.sampled_from("xy")),
        min_size=1,
        max_size=5,
    ),
    st.integers(2, 3),
)
def test_heuristics_never_beat_bruteforce(body, n_sites):
    """Theorem 1 in practice: PATDETECTS/CTRDETECT ship >= the true optimum."""
    relation = Relation(S, [(i,) + row for i, row in enumerate(body)])
    cluster = partition_uniform(relation, n_sites)
    fd = parse_cfd("([a] -> [b])")
    optimum = minimum_shipment_count(cluster, [fd])
    assert optimum is not None
    assert pat_detect_s(cluster, fd).tuples_shipped >= optimum
    assert ctr_detect(cluster, fd).tuples_shipped >= optimum


# -- Theorem 1 reduction ----------------------------------------------------

MSC = SetCoverInstance(
    elements=("x1", "x2", "x3", "x4", "x5", "x6"),
    subsets=(
        ("x1", "x2", "x3"),
        ("x4", "x5", "x6"),
        ("x2", "x4", "x6"),
        ("x1", "x3", "x5"),
    ),
    k=2,
)


def test_msc_instance_validation():
    with pytest.raises(ValueError):
        SetCoverInstance(("a",), (("a", "a", "a"),), 1)
    with pytest.raises(ValueError):
        SetCoverInstance(("a", "b", "c"), (("a", "b", "z"),), 1)


def test_theorem1_structure():
    inst = theorem1_reduction(MSC)
    m, n = len(MSC.elements), len(MSC.subsets)
    assert inst.cluster.n_sites == n + 2
    for i in range(n):
        assert len(inst.cluster.fragment(i)) == 1
    assert len(inst.cluster.fragment(inst.v_site)) == 6 * m * m
    assert len(inst.cluster.fragment(inst.u_site)) == 6 * m * m
    assert [cfd.name for cfd in inst.sigma] == [
        "A1->B", "A2->B", "A3->B", "Bu->B",
    ]
    l, lp = inst.value_width, inst.c_width
    assert lp == 6 * m * l + 1
    assert inst.k_prime == 2 * m * (2 * lp + 4 * l) + MSC.k * 6 * l


def test_theorem1_forward_direction():
    """A cover of size K yields shipments of byte size exactly K' after
    which Σ is locally checkable — the proof's forward construction."""
    inst = theorem1_reduction(MSC)
    moves = theorem1_cover_shipments(inst, [0, 1])  # a valid cover
    assert len(moves) == MSC.k + 2 * len(MSC.elements)
    assert sum(inst.move_bytes(mv) for mv in moves) == inst.k_prime
    assert locally_checkable_after(inst.cluster, inst.sigma, moves)


def test_theorem1_empty_shipments_insufficient():
    inst = theorem1_reduction(MSC)
    assert not locally_checkable_after(inst.cluster, inst.sigma, [])


def test_theorem1_non_cover_rejected():
    inst = theorem1_reduction(MSC)
    with pytest.raises(ValueError):
        theorem1_cover_shipments(inst, [0])  # {x1..x3} alone is not a cover


# -- Theorems 2-4 structural artifacts ---------------------------------------


def test_theorem2_structure():
    inst = theorem2_reduction(MSC)
    assert set(inst.partition.names) == {"R1", "R2"}
    assert "W" in inst.partition.attributes_of("R2")
    assert len(inst.sigma) == 4
    assert not is_dependency_preserving(inst.partition, inst.sigma)


def test_theorem3_structure():
    inst = theorem3_reduction(MSC)
    m, n = len(MSC.elements), len(MSC.subsets)
    assert inst.cluster.n_sites == n + 1
    assert inst.cluster.total_tuples() == m * (3 * n + 1)
    assert len(inst.cluster.fragment(n)) == m
    assert inst.k_prime == MSC.k + m + 1


def test_theorem4_structure():
    inst = theorem4_reduction(MSC)
    m, n = len(MSC.elements), len(MSC.subsets)
    assert len(inst.instance.schema) == m * m + m + 1
    assert inst.partition.names[-1] == f"V{n + 1}"
    assert len(inst.instance) == 2
    # the two tuples agree on every A and differ on every B
    assert not is_dependency_preserving(inst.partition, inst.sigma)


# -- Theorem 8 reduction ------------------------------------------------------


def test_theorem8_forward_direction_general():
    """A hitting set induces a preserving augmentation of the same size,
    so the minimum refinement is never larger than the minimum hitting set."""
    hs = HittingSetInstance(
        elements=("a", "b", "c"),
        subsets=(("a", "b"), ("b", "c"), ("a", "c")),
        k=2,
    )
    inst = theorem8_reduction(hs)
    hit = minimum_hitting_set(hs.elements, hs.subsets)
    refined = inst.partition.refine({"R0": [f"A_{x}" for x in hit]})
    assert is_dependency_preserving(refined, inst.sigma)
    augmentation = minimum_refinement(inst.partition, inst.sigma)
    assert augmentation_size(augmentation) <= len(hit)


def test_theorem8_equality_on_disjoint_subsets():
    """With pairwise-disjoint subsets the reduction is tight: minimum
    refinement size == minimum hitting set size."""
    hs = HittingSetInstance(
        elements=("a", "b", "c", "d"),
        subsets=(("a", "b"), ("c", "d")),
        k=2,
    )
    inst = theorem8_reduction(hs)
    assert hitting_set_size(hs.elements, hs.subsets) == 2
    augmentation = minimum_refinement(inst.partition, inst.sigma)
    assert augmentation_size(augmentation) == 2
    assert is_dependency_preserving(
        inst.partition.refine(augmentation), inst.sigma
    )


def test_theorem8_single_subset():
    hs = HittingSetInstance(elements=("a", "b"), subsets=(("a", "b"),), k=1)
    inst = theorem8_reduction(hs)
    augmentation = minimum_refinement(inst.partition, inst.sigma)
    assert augmentation_size(augmentation) == 1
