"""Tests for closed frequent itemset mining and FD pattern instantiation."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core import CFD, WILDCARD, detect_violations, is_wildcard, parse_cfd
from repro.detect import ctr_detect, pat_detect_s
from repro.mining import (
    closed_frequent_itemsets,
    frequent_itemsets,
    instantiate_with_frequent_patterns,
    itemsets_to_rows,
)
from repro.partition import partition_uniform
from repro.relational import Relation, Schema

ATTRS = ("a", "b", "c")


def support_of(transactions, itemset):
    return sum(
        1
        for t in transactions
        if all(dict(zip(ATTRS, t)).get(attr) == val for attr, val in itemset)
    )


# -- frequent itemsets ---------------------------------------------------------


def test_frequent_itemsets_simple():
    transactions = [
        (1, "x", True),
        (1, "x", False),
        (1, "y", True),
        (2, "y", True),
    ]
    frequent = frequent_itemsets(transactions, ATTRS, min_support=2)
    assert frequent[frozenset({("a", 1)})] == 3
    assert frequent[frozenset({("a", 1), ("b", "x")})] == 2
    assert frozenset({("a", 2)}) not in frequent


def test_min_support_must_be_positive():
    with pytest.raises(ValueError):
        frequent_itemsets([], ATTRS, 0)


def test_one_value_per_attribute_in_itemsets():
    transactions = [(1, "x", True), (2, "x", True)]
    frequent = frequent_itemsets(transactions, ATTRS, 1)
    for itemset in frequent:
        attrs = [attr for attr, _v in itemset]
        assert len(attrs) == len(set(attrs))


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 2), st.sampled_from("xy"), st.booleans()
        ),
        min_size=1,
        max_size=30,
    ),
    st.integers(1, 5),
)
def test_frequent_itemsets_supports_are_exact(transactions, min_support):
    frequent = frequent_itemsets(transactions, ATTRS, min_support)
    for itemset, support in frequent.items():
        assert support == support_of(transactions, itemset)
        assert support >= min_support


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 2), st.sampled_from("xy"), st.booleans()
        ),
        min_size=1,
        max_size=30,
    ),
    st.integers(1, 5),
)
def test_frequent_itemsets_complete_downward_closed(transactions, min_support):
    """Apriori must enumerate *all* frequent itemsets (needed for closure)."""
    from itertools import combinations

    frequent = frequent_itemsets(transactions, ATTRS, min_support)
    distinct_items = {
        (attr, value)
        for t in transactions
        for attr, value in zip(ATTRS, t)
    }
    for size in range(1, len(ATTRS) + 1):
        for combo in combinations(sorted(distinct_items), size):
            attrs = [a for a, _ in combo]
            if len(set(attrs)) != size:
                continue
            itemset = frozenset(combo)
            if support_of(transactions, itemset) >= min_support:
                assert itemset in frequent


def test_closed_itemsets_drop_absorbed_subsets():
    # b is always "x" when a is 1 -> {a=1} is not closed, {a=1,b=x} is.
    transactions = [(1, "x", True), (1, "x", False), (2, "y", True)]
    closed = closed_frequent_itemsets(transactions, ATTRS, 2)
    assert frozenset({("a", 1)}) not in closed
    assert frozenset({("a", 1), ("b", "x")}) in closed


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 2), st.sampled_from("xy"), st.booleans()
        ),
        min_size=1,
        max_size=25,
    ),
)
def test_closed_itemsets_property(transactions):
    """Closed = no one-item extension with equal support."""
    closed = closed_frequent_itemsets(transactions, ATTRS, 2)
    frequent = frequent_itemsets(transactions, ATTRS, 2)
    for itemset, support in closed.items():
        covered = {a for a, _ in itemset}
        for other in frequent:
            if len(other) == 1:
                ((attr, value),) = other
                if attr in covered:
                    continue
                assert frequent.get(itemset | other) != support


def test_itemsets_to_rows():
    rows = itemsets_to_rows(
        [frozenset({("a", 1), ("c", True)})], ATTRS, WILDCARD
    )
    assert rows == [(1, WILDCARD, True)]


# -- FD instantiation ----------------------------------------------------------

SCHEMA = Schema("R", ["id", "a", "b", "y"], key=["id"])


def skewed_relation(n=200):
    """80% of tuples share (a=1, b='hot'); the rest are scattered."""
    rows = []
    for i in range(n):
        if i % 5 != 0:
            rows.append((i, 1, "hot", i % 7))
        else:
            rows.append((i, i % 13, f"cold{i % 11}", i % 7))
    return Relation(SCHEMA, rows)


def test_instantiation_preserves_violations():
    relation = skewed_relation()
    cluster = partition_uniform(relation, 4)
    fd = CFD(["a", "b"], ["y"], name="fd")
    result = instantiate_with_frequent_patterns(cluster, fd, theta=0.1)
    assert result.n_mined_patterns > 0
    expected = detect_violations(relation, fd).violations
    got = detect_violations(relation, result.cfd).violations
    assert got == expected


def test_instantiation_reduces_shipment():
    """The Fig. 3(e) effect: mined patterns cut PATDETECTS traffic."""
    relation = skewed_relation()
    cluster = partition_uniform(relation, 4)
    fd = CFD(["a", "b"], ["y"], name="fd")
    plain = pat_detect_s(cluster, fd)
    mined = instantiate_with_frequent_patterns(cluster, fd, theta=0.1)
    refined = pat_detect_s(cluster, mined.cfd)
    assert refined.report.violations == plain.report.violations
    assert refined.tuples_shipped < plain.tuples_shipped


def test_high_theta_mines_nothing():
    relation = skewed_relation()
    cluster = partition_uniform(relation, 2)
    fd = CFD(["a", "b"], ["y"])
    result = instantiate_with_frequent_patterns(cluster, fd, theta=1.0)
    # Nothing occurs in every tuple of a fragment here except possibly the
    # hot pattern; either way the CFD stays equivalent.
    expected = detect_violations(relation, fd).violations
    assert detect_violations(relation, result.cfd).violations == expected


def test_theta_validated():
    relation = skewed_relation(10)
    cluster = partition_uniform(relation, 2)
    fd = CFD(["a"], ["y"])
    with pytest.raises(ValueError):
        instantiate_with_frequent_patterns(cluster, fd, theta=0.0)
    with pytest.raises(ValueError):
        instantiate_with_frequent_patterns(cluster, fd, theta=1.5)


def test_wildcard_row_kept_last():
    relation = skewed_relation()
    cluster = partition_uniform(relation, 2)
    fd = CFD(["a", "b"], ["y"])
    result = instantiate_with_frequent_patterns(cluster, fd, theta=0.2)
    last = result.cfd.tableau[-1]
    assert all(is_wildcard(v) for v in last.lhs)


def test_max_patterns_cap():
    relation = skewed_relation()
    cluster = partition_uniform(relation, 2)
    fd = CFD(["a", "b"], ["y"])
    result = instantiate_with_frequent_patterns(
        cluster, fd, theta=0.01, max_patterns=3
    )
    assert result.n_mined_patterns <= 3


def test_non_fd_rows_untouched():
    cfd = parse_cfd("([a, b] -> [y]) with (1, 'hot' || _), (_, _ || _)")
    relation = skewed_relation()
    cluster = partition_uniform(relation, 2)
    result = instantiate_with_frequent_patterns(cluster, cfd, theta=0.1)
    lhs_rows = [tp.lhs for tp in result.cfd.tableau]
    assert (1, "hot") in lhs_rows  # original specific row kept
    expected = detect_violations(relation, cfd).violations
    assert detect_violations(relation, result.cfd).violations == expected


def test_ctr_with_mining_matches_without():
    relation = skewed_relation()
    cluster = partition_uniform(relation, 3)
    fd = CFD(["a", "b"], ["y"], name="fd")
    mined = instantiate_with_frequent_patterns(cluster, fd, theta=0.1)
    assert (
        ctr_detect(cluster, mined.cfd).report.violations
        == ctr_detect(cluster, fd).report.violations
    )
