"""Parallel scheduler conformance: workers > 1 is bit-identical to serial.

``REPRO_WORKERS=4`` must never change an answer — not the violations, not
the tuple keys, not the shipment totals, not the simulated times — across
all three centralized engines (the module opts into the engine matrix via
the ``detection_engine`` fixture) and every distributed detector.  The
process mode gets its own (small, single) leg since worker processes are
expensive to spawn; thread mode runs under hypothesis like the rest of the
property suites.
"""

import os

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core import (
    CFD,
    PatternTuple,
    WILDCARD,
    detect_violations,
    parallel_map,
    resolve_mode,
    resolve_workers,
)
from repro.detect import (
    clust_detect,
    ctr_detect,
    pat_detect_s,
    seq_detect,
    vertical_detect,
)
from repro.partition import partition_uniform
from repro.relational import Relation, Schema

ATTRS = ("a", "b", "c", "d")
SCHEMA = Schema("R", ("id",) + ATTRS, key=("id",))
VALUES = [0, 1, 2]

SETTINGS = settings(max_examples=60, deadline=None)

rows = st.lists(
    st.tuples(*[st.sampled_from(VALUES) for _ in ATTRS]),
    min_size=0,
    max_size=24,
)


@st.composite
def relations(draw):
    body = draw(rows)
    return Relation(SCHEMA, [(i,) + r for i, r in enumerate(body)])


@st.composite
def pattern_entries(draw):
    if draw(st.booleans()):
        return WILDCARD
    return draw(st.sampled_from(VALUES))


@st.composite
def cfds(draw):
    lhs_size = draw(st.integers(1, 3))
    attrs = draw(
        st.permutations(ATTRS).map(lambda p: list(p[: lhs_size + 1]))
    )
    lhs, rhs = attrs[:-1], [attrs[-1]]
    tableau = [
        PatternTuple(
            [draw(pattern_entries()) for _ in lhs],
            [draw(pattern_entries()) for _ in rhs],
        )
        for _ in range(draw(st.integers(1, 3)))
    ]
    return CFD(lhs, rhs, tableau, name=f"cfd{draw(st.integers(0, 10 ** 6))}")


def _with_workers(monkeypatch_env, workers, mode="thread"):
    monkeypatch_env.setenv("REPRO_WORKERS", str(workers))
    monkeypatch_env.setenv("REPRO_PARALLEL", mode)


# -- resolution ---------------------------------------------------------------


def test_resolve_workers_and_mode(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_PARALLEL", raising=False)
    assert resolve_workers() == 1  # serial default
    assert resolve_workers(3) == 3
    assert resolve_workers(False) == 1
    assert resolve_workers(0) == (os.cpu_count() or 1)
    assert resolve_mode() == "thread"
    monkeypatch.setenv("REPRO_WORKERS", "4")
    assert resolve_workers() == 4
    assert resolve_workers(2) == 2  # explicit argument wins
    monkeypatch.setenv("REPRO_PARALLEL", "off")
    assert resolve_mode() == "off"
    monkeypatch.setenv("REPRO_PARALLEL", "bogus")
    with pytest.raises(ValueError):
        resolve_mode()
    monkeypatch.setenv("REPRO_WORKERS", "many")
    with pytest.raises(ValueError):
        resolve_workers()


def test_parallel_map_preserves_order(monkeypatch):
    _with_workers(monkeypatch, 4)
    items = list(range(50))
    assert parallel_map(lambda x: x * x, items) == [x * x for x in items]


# -- centralized engines: the workers leg of the conformance matrix -----------


@pytest.mark.usefixtures("detection_engine")
@SETTINGS
@given(relations(), st.lists(cfds(), min_size=1, max_size=3))
def test_parallel_centralized_equals_serial(relation, sigma):
    """workers=4 ≡ serial on violations AND tuple keys, per engine.

    Explicit ``parallel=`` arguments override any ambient ``REPRO_WORKERS``
    (the CI workers=4 leg), so both sides are pinned whatever the
    environment.
    """
    serial = detect_violations(relation, sigma, parallel=False)
    parallel = detect_violations(relation, sigma, parallel=4)
    assert parallel.violations == serial.violations
    assert parallel.tuple_keys == serial.tuple_keys


# -- distributed detectors ----------------------------------------------------


@SETTINGS
@given(relations(), st.lists(cfds(), min_size=1, max_size=2))
def test_parallel_distributed_equals_serial(relation, sigma):
    """Every horizontal algorithm: workers=4 threads ≡ serial, fully."""
    cfd = sigma[0]
    previous = {
        name: os.environ.get(name)
        for name in ("REPRO_WORKERS", "REPRO_PARALLEL")
    }
    try:
        os.environ["REPRO_WORKERS"] = "1"
        serial_cluster = partition_uniform(relation, 3)
        serial = [
            pat_detect_s(serial_cluster, cfd),
            ctr_detect(serial_cluster, cfd),
            seq_detect(serial_cluster, sigma, single="s"),
            clust_detect(serial_cluster, sigma, strategy="s"),
        ]
        os.environ["REPRO_WORKERS"] = "4"
        os.environ["REPRO_PARALLEL"] = "thread"
        parallel_cluster = partition_uniform(relation, 3)
        parallel = [
            pat_detect_s(parallel_cluster, cfd),
            ctr_detect(parallel_cluster, cfd),
            seq_detect(parallel_cluster, sigma, single="s"),
            clust_detect(parallel_cluster, sigma, strategy="s"),
        ]
    finally:
        for name, value in previous.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
    for a, b in zip(serial, parallel):
        assert b.report.violations == a.report.violations, a.algorithm
        assert b.report.tuple_keys == a.report.tuple_keys, a.algorithm
        assert b.tuples_shipped == a.tuples_shipped, a.algorithm
        assert b.shipments.codes_shipped == a.shipments.codes_shipped
        assert b.response_time == pytest.approx(a.response_time)


def test_parallel_process_pool_equals_serial(monkeypatch):
    """One (deliberately small) fragment-resident process-pool leg."""
    relation = Relation(
        SCHEMA, [(i, i % 3, i % 2, (i * 7) % 5, i % 2) for i in range(60)]
    )
    cfd = CFD(
        ["a", "b"],
        ["c"],
        [PatternTuple([WILDCARD, WILDCARD], [WILDCARD])],
        name="phi",
    )
    monkeypatch.setenv("REPRO_WORKERS", "1")
    serial = pat_detect_s(partition_uniform(relation, 3), cfd)
    monkeypatch.setenv("REPRO_WORKERS", "2")
    monkeypatch.setenv("REPRO_PARALLEL", "process")
    cluster = partition_uniform(relation, 3)
    outcome = pat_detect_s(cluster, cfd)
    again = pat_detect_s(cluster, cfd)  # warm pool, cached dictionaries
    for run in (outcome, again):
        assert run.report.violations == serial.report.violations
        assert run.report.tuple_keys == serial.report.tuple_keys
        assert run.tuples_shipped == serial.tuples_shipped


def _resident_pid(fragment):
    """Worker-side probe: which process answered for this fragment."""
    import os as _os

    return (_os.getpid(), len(fragment))


def test_fragment_pool_routes_fixed_worker_per_fragment():
    """True site-residency: one fragment always answers from one worker."""
    from repro.core.parallel import FragmentPool

    fragments = [
        Relation(SCHEMA, [(i * 10 + j, 0, 0, 0, 0) for j in range(i + 1)])
        for i in range(3)
    ]
    pool = FragmentPool(fragments, workers=2)
    try:
        tasks = [(0, ()), (1, ()), (2, ()), (1, ())]
        first = pool.run(_resident_pid, tasks)
        second = pool.run(_resident_pid, tasks)
        # results align with tasks (lengths prove the right fragment ran)
        assert [n for _pid, n in first] == [1, 2, 3, 2]
        # fragments 0 and 2 share worker 0; fragment 1 lives at worker 1
        assert first[0][0] == first[2][0]
        assert first[0][0] != first[1][0]
        # routing is *fixed*: the same fragment answers from the same
        # process on every call
        assert [pid for pid, _n in first] == [pid for pid, _n in second]
    finally:
        pool.close()


def test_fragment_pool_ships_worker_errors_home():
    from repro.core.parallel import FragmentPool

    pool = FragmentPool([Relation(SCHEMA, [(1, 0, 0, 0, 0)])], workers=1)
    try:
        with pytest.raises(ZeroDivisionError):
            pool.run(_divide_by_zero, [(0, ())])
        # the worker survives a failed order and keeps serving
        assert pool.run(_resident_pid, [(0, ())])[0][1] == 1
    finally:
        pool.close()


def _divide_by_zero(fragment):
    return 1 // 0


def _echo_payload(fragment, payload):
    return payload


class _LambdaError(RuntimeError):
    """An exception that cannot cross the pipe (closure in its state)."""

    def __init__(self):
        super().__init__("boom")
        self.payload = lambda: None  # unpicklable attribute


def _raise_unpicklable(fragment):
    raise _LambdaError()


def _return_unpicklable(fragment):
    return lambda: None


def _exit_hard(fragment):
    import os as _os

    _os._exit(21)


def test_fragment_pool_wraps_unpicklable_errors(monkeypatch):
    """A worker error that cannot pickle still ships home, as its repr."""
    from repro.core.parallel import FragmentPool

    pool = FragmentPool([Relation(SCHEMA, [(1, 0, 0, 0, 0)])], workers=1)
    try:
        with pytest.raises(RuntimeError, match="_LambdaError"):
            pool.run(_raise_unpicklable, [(0, ())])
        with pytest.raises(RuntimeError, match="PicklingError|pickle"):
            pool.run(_return_unpicklable, [(0, ())])
        # both failed orders were application errors: the pool survives
        assert pool.run(_resident_pid, [(0, ())])[0][1] == 1
        assert not pool.poisoned
    finally:
        pool.close()


def test_fragment_pool_empty_tasks_short_circuit():
    from repro.core.parallel import FragmentPool

    pool = FragmentPool([Relation(SCHEMA, [(1, 0, 0, 0, 0)])], workers=1)
    try:
        assert pool.run(_resident_pid, []) == []
    finally:
        pool.close()


def test_map_fragments_single_task_never_builds_a_pool(monkeypatch):
    """One task in process mode runs serially: no worker processes spawn."""
    from repro.core import parallel as par

    class Owner:
        pass

    owner = Owner()
    monkeypatch.setenv("REPRO_PARALLEL", "process")
    monkeypatch.setenv("REPRO_WORKERS", "4")
    pools_before = list(par._POOLS)
    fragments = [Relation(SCHEMA, [(1, 0, 0, 0, 0)])]
    out = par.map_fragments(owner, fragments, _resident_pid, [(0, ())])
    assert out[0] == (os.getpid(), 1)  # answered in-process, not a worker
    assert par._POOLS == pools_before
    assert getattr(owner, "_fragment_pool", None) is None
    assert par.map_fragments(owner, fragments, _resident_pid, []) == []


def test_fragment_pool_close_leaves_no_zombies():
    from repro.core.parallel import FragmentPool

    fragments = [Relation(SCHEMA, [(i, 0, 0, 0, 0)]) for i in range(3)]
    pool = FragmentPool(fragments, workers=3)
    processes = list(pool._processes)
    assert all(p.is_alive() for p in processes)
    pool.close()
    assert not any(p.is_alive() for p in processes)
    pool.close()  # idempotent: closing twice must not raise


def test_pool_that_dies_mid_order_is_evicted_from_every_cache(monkeypatch):
    """Regression: a run() that raised leaves no poisoned pool cached."""
    from repro.core import parallel as par

    class Owner:
        pass

    owner = Owner()
    monkeypatch.setenv("REPRO_POOL_RETRIES", "1")
    fragments = [Relation(SCHEMA, [(i, 0, 0, 0, 0)]) for i in range(2)]
    pool = par.fragment_pool(owner, fragments, 2)
    assert owner._fragment_pool is pool and pool in par._POOLS
    with pytest.raises(par.WorkerCrashError):
        pool.run(_exit_hard, [(0, ()), (1, ())])
    assert pool.poisoned
    assert pool not in par._POOLS
    assert owner._fragment_pool is None
    assert not any(p.is_alive() for p in pool._processes)
    # the next request builds a fresh, healthy pool
    fresh = par.fragment_pool(owner, fragments, 2)
    try:
        assert fresh is not pool and not fresh.poisoned
        assert [n for _pid, n in fresh.run(_resident_pid, [(0, ()), (1, ())])] == [1, 1]
    finally:
        fresh.evict()


def test_fragment_pool_survives_orders_larger_than_the_pipe_buffer():
    """Several large orders routed to one worker must not deadlock.

    An eager send-everything loop fills both pipe directions at once
    (parent blocked sending order 2, worker blocked sending order 1's
    result) — the pool keeps one order in flight per worker instead.
    """
    from repro.core.parallel import FragmentPool

    fragments = [
        Relation(SCHEMA, [(i, 0, 0, 0, 0)]) for i in range(2)
    ]
    pool = FragmentPool(fragments, workers=1)  # both fragments, one worker
    try:
        big = "x" * 400_000  # well past the ~64KB OS pipe buffer
        tasks = [(0, (big + "a",)), (1, (big + "b",)), (0, (big + "c",))]
        results = pool.run(_echo_payload, tasks)
        assert [r[-1] for r in results] == ["a", "b", "c"]
    finally:
        pool.close()


def test_vertical_parallel_equals_serial(monkeypatch):
    from repro.partition import vertical_partition

    relation = Relation(
        SCHEMA, [(i, i % 3, i % 2, (i * 3) % 4, i % 2) for i in range(40)]
    )
    sigma = [
        CFD(["a"], ["b"], name="phi1"),
        CFD(["b", "c"], ["d"], name="phi2"),
    ]
    sets = [("id", "a", "b"), ("id", "c", "d")]
    monkeypatch.setenv("REPRO_WORKERS", "1")
    serial = vertical_detect(vertical_partition(relation, sets), sigma)
    monkeypatch.setenv("REPRO_WORKERS", "4")
    monkeypatch.setenv("REPRO_PARALLEL", "thread")
    parallel = vertical_detect(vertical_partition(relation, sets), sigma)
    assert parallel.report.violations == serial.report.violations
    assert parallel.report.tuple_keys == serial.report.tuple_keys
    assert parallel.tuples_shipped == serial.tuples_shipped
