"""The overload governor and integrity scrubber (`repro.serve`).

Covers admission control (token-bucket rates, rows-per-update and
per-tenant session/ticket caps), per-session circuit breakers driven by
deterministic ``fold-fail@N`` fault plans, deadline-aware group commit,
the background scrubber's quarantine path (``verify-drift@N``), the
tenant-fair LRU shed, the lock-free slow-create path, the HTTP
surfaces (413 body cap, 429/503 + ``Retry-After``, truthful
``/healthz``) and the harness client's capped 429 retry loop.
"""

from __future__ import annotations

import io
import json
import threading
import time
import urllib.error
import urllib.request
from email.message import Message

import pytest

from repro.core import FaultPlan, fault_plan
from repro.core.faults import FoldFaultInjected
from repro.experiments.harness import request_json
from repro.serve import (
    Backpressure,
    BadSessionSpec,
    CircuitBreaker,
    CircuitOpen,
    DeadlineExceeded,
    DetectionService,
    DuplicateSession,
    Governor,
    QuotaExceeded,
    SessionQuarantined,
    TokenBucket,
    UnknownSession,
    resolve_breaker,
    resolve_cooldown,
    resolve_max_body,
    resolve_max_rows,
    resolve_rate,
    resolve_scrub,
    resolve_scrub_sample,
    resolve_tenant_sessions,
    serve_http,
)
from repro.serve.service import ManagedSession, _Ticket

CFD = "([CC=44, zip] -> [street])"
SCHEMA = {
    "name": "cust",
    "attributes": ["id", "CC", "zip", "street"],
    "key": ["id"],
}


def base_rows(n: int = 60) -> list[list]:
    rows = []
    for i in range(n):
        zip_code = f"Z{i % 7}"
        street = f"S{i % 3}" if i % 5 else "CONFLICT"
        rows.append([i, 44 if i % 2 else 99, zip_code, street])
    return rows


def spec(rows, kind="central", cfds=(CFD,)) -> dict:
    return {"kind": kind, "schema": SCHEMA, "cfds": list(cfds), "rows": rows}


class Clock:
    """A hand-cranked monotonic clock for deterministic time logic."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# -- knob resolvers -----------------------------------------------------------


def test_governor_knob_resolvers(monkeypatch):
    assert resolve_rate() == 0.0
    assert resolve_tenant_sessions() == 0
    assert resolve_max_rows() == 100_000
    assert resolve_breaker() == 5
    assert resolve_cooldown() == 1.0
    assert resolve_max_body() == 8 * 1024 * 1024
    assert resolve_scrub() == 0.0
    assert resolve_scrub_sample() == 64

    monkeypatch.setenv("REPRO_SERVE_RATE", "2.5")
    assert resolve_rate() == 2.5
    assert resolve_rate(1.0) == 1.0  # explicit override wins
    monkeypatch.setenv("REPRO_SERVE_RATE", "fast")
    with pytest.raises(ValueError):
        resolve_rate()

    monkeypatch.setenv("REPRO_SERVE_MAX_ROWS", "0")
    with pytest.raises(ValueError):
        resolve_max_rows()
    monkeypatch.setenv("REPRO_SERVE_BREAKER", "0")
    with pytest.raises(ValueError):
        resolve_breaker()
    monkeypatch.setenv("REPRO_SERVE_COOLDOWN", "0")
    with pytest.raises(ValueError):
        resolve_cooldown()
    monkeypatch.setenv("REPRO_SERVE_SCRUB", "-1")
    with pytest.raises(ValueError):
        resolve_scrub()
    monkeypatch.setenv("REPRO_SERVE_TENANT_SESSIONS", "3")
    assert resolve_tenant_sessions() == 3


# -- token bucket & breaker units ---------------------------------------------


def test_token_bucket_refills_at_rate():
    clock = Clock()
    bucket = TokenBucket(2.0, clock=clock)
    assert bucket.try_acquire() is None
    assert bucket.try_acquire() is None  # burst = one second of rate
    retry_after = bucket.try_acquire()
    assert retry_after == pytest.approx(0.5)  # one token at 2/s
    clock.advance(0.5)
    assert bucket.try_acquire() is None
    assert bucket.try_acquire() is not None


def test_circuit_breaker_state_machine():
    clock = Clock()
    breaker = CircuitBreaker(threshold=3, cooldown=10.0, clock=clock)
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == "closed"  # K-1 failures: still serving
    breaker.record_failure()
    assert breaker.state == "open"

    with pytest.raises(CircuitOpen) as rejected:
        breaker.admit()
    assert 0 < rejected.value.retry_after <= 10.0

    clock.advance(10.0)
    breaker.admit()  # the half-open probe
    assert breaker.state == "half-open"
    with pytest.raises(CircuitOpen):
        breaker.admit()  # one probe per cool-down window
    breaker.record_success()
    assert breaker.state == "closed"
    stats = breaker.stats()
    assert stats["opened"] == 1
    assert stats["probes"] == 1
    assert stats["closed"] == 1


def test_circuit_breaker_failed_probe_reopens():
    clock = Clock()
    breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
    breaker.record_failure()
    assert breaker.state == "open"
    clock.advance(5.0)
    breaker.admit()
    breaker.record_failure()  # the probe itself fails
    assert breaker.state == "open"
    assert breaker.stats()["reopened"] == 1
    with pytest.raises(CircuitOpen):
        breaker.admit()  # a fresh cool-down started


def test_ticket_quota_is_per_tenant():
    governor = Governor(tenant_sessions=2, queue_depth=3)
    assert governor.ticket_cap == 6
    for _ in range(6):
        governor.ticket_admitted("a")
    with pytest.raises(QuotaExceeded):
        governor.ticket_admitted("a")
    governor.ticket_admitted("b")  # another tenant is unaffected
    governor.ticket_settled("a")
    governor.ticket_admitted("a")  # a released slot re-admits
    assert governor.stats()["shed"]["tickets"] == 1


# -- service-level quotas -----------------------------------------------------


def test_rows_cap_rejects_updates_but_not_session_bootstrap():
    service = DetectionService(max_rows=3)
    try:
        # the bootstrap relation is bounded by the body cap, not the
        # per-update rows cap
        service.create_session("t", "s", spec(base_rows(60)))
        with pytest.raises(QuotaExceeded):
            service.update(
                "t", "s",
                inserted=[[1000 + i, 44, "Z1", "N"] for i in range(4)],
            )
        result = service.update("t", "s", inserted=[[2000, 44, "Z1", "N"]])
        assert result["queue_seconds"] >= 0.0
        governor = service.stats()["governor"]
        assert governor["shed"]["rows"] == 1
    finally:
        service.close()


def test_tenant_session_cap_and_rate_quota():
    service = DetectionService(tenant_sessions=1)
    try:
        service.create_session("a", "one", spec(base_rows(10)))
        with pytest.raises(QuotaExceeded):
            service.create_session("a", "two", spec(base_rows(10)))
        service.create_session("b", "one", spec(base_rows(10)))
        assert service.stats()["governor"]["shed"]["sessions"] == 1
    finally:
        service.close()

    throttled = DetectionService(rate=0.001)
    try:
        # burst = max(1, rate) = one token; the create consumes it
        throttled.create_session("t", "s", spec(base_rows(10)))
        with pytest.raises(QuotaExceeded) as rejected:
            throttled.update("t", "s", inserted=[[900, 44, "Z1", "N"]])
        assert rejected.value.retry_after > 0
        assert isinstance(rejected.value, Backpressure)  # → HTTP 429
        assert throttled.stats()["governor"]["shed"]["rate"] == 1
    finally:
        throttled.close()


def test_shedding_is_tenant_fair():
    """A burst from one tenant sheds its own sessions, never everyone
    else's: the LRU victim comes from the tenant holding the most."""
    service = DetectionService(max_sessions=2)
    try:
        service.create_session("a", "s1", spec(base_rows(10)))
        service.create_session("a", "s2", spec(base_rows(10)))
        service.create_session("b", "s1", spec(base_rows(10)))
        registry = service.registry
        assert set(registry._live) == {("a", "s2"), ("b", "s1")}
        assert ("a", "s1") in registry._parked
        service.create_session("a", "s3", spec(base_rows(10)))
        assert set(registry._live) == {("b", "s1"), ("a", "s3")}
        # the parked sessions restore transparently on access
        assert service.detect("a", "s1")["n_violations"] >= 0
    finally:
        service.close()


# -- deadline-aware group commit ----------------------------------------------


def test_expired_tickets_shed_before_the_fold():
    clock = Clock()
    governor = Governor(deadline=5.0, clock=clock)
    session = ManagedSession("t", "s", spec(base_rows(20)), 8, 8)
    session.bind_governor(governor)

    stale = _Ticket([(7000, 44, "Z1", "LATE")], [], 0)
    stale.deadline = clock() - 1.0  # admitted long ago, already expired
    session._pending.append(stale)

    result = session.update(inserted=[[7001, 44, "Z1", "FRESH"]])
    assert result["coalesced"] == 1  # the stale neighbour never folded
    assert isinstance(stale.error, DeadlineExceeded)
    assert stale.error.retry_after > 0
    assert session.stats["deadline_dropped"] == 1
    assert governor.stats()["shed"]["deadline"] == 1

    keys = {key[0] for key in session._detector.report.tuple_keys}
    assert 7001 in keys  # the fresh ticket folded into the Z1 conflict
    assert 7000 not in keys  # the shed update provably left no trace


# -- circuit breakers under fold-fail chaos -----------------------------------


def test_breaker_opens_after_exactly_k_consecutive_fold_failures():
    service = DetectionService(breaker=3, cooldown=30.0)
    try:
        service.create_session("t", "s", spec(base_rows(20)))
        session = service.registry.get("t", "s")
        with fault_plan(FaultPlan.parse("fold-fail@0,fold-fail@1,fold-fail@2")):
            for failure in range(3):
                assert session.breaker.state == "closed"
                with pytest.raises(FoldFaultInjected):
                    service.update(
                        "t", "s", inserted=[[5000 + failure, 44, "Z1", "X"]]
                    )
            assert session.breaker.state == "open"
            folds_before = session.stats["folds"]
            with pytest.raises(CircuitOpen) as rejected:
                service.update("t", "s", inserted=[[5010, 44, "Z1", "X"]])
            assert rejected.value.retry_after > 0
            # the rejection happened before any work queued
            assert session.stats["folds"] == folds_before
            assert session.breaker.stats()["opened"] == 1
            assert "t/s" in service.health()["breakers_open"]
            assert service.health()["ok"] is False
    finally:
        service.close()


def test_half_open_probe_recovers_a_healed_session():
    clock = Clock()
    governor = Governor(breaker=2, cooldown=5.0, clock=clock)
    session = ManagedSession("t", "s", spec(base_rows(20)), 8, 8)
    session.bind_governor(governor)
    with fault_plan(FaultPlan.parse("fold-fail@0,fold-fail@1")):
        for failure in range(2):
            with pytest.raises(FoldFaultInjected):
                session.update(inserted=[[6000 + failure, 44, "Z1", "X"]])
        assert session.breaker.state == "open"
        with pytest.raises(CircuitOpen):
            session.update(inserted=[[6002, 44, "Z1", "X"]])
        clock.advance(5.0)
        # the plan is exhausted: the half-open probe folds for real
        result = session.update(inserted=[[6003, 44, "Z1", "X"]])
        assert result["coalesced"] == 1
    assert session.breaker.state == "closed"
    stats = session.breaker.stats()
    assert stats["probes"] == 1 and stats["closed"] == 1


def test_failed_probe_reopens_the_session_breaker():
    clock = Clock()
    governor = Governor(breaker=1, cooldown=5.0, clock=clock)
    session = ManagedSession("t", "s", spec(base_rows(20)), 8, 8)
    session.bind_governor(governor)
    with fault_plan(FaultPlan.parse("fold-fail@0,fold-fail@1")):
        with pytest.raises(FoldFaultInjected):
            session.update(inserted=[[6100, 44, "Z1", "X"]])
        assert session.breaker.state == "open"
        clock.advance(5.0)
        with pytest.raises(FoldFaultInjected):  # the probe fails too
            session.update(inserted=[[6101, 44, "Z1", "X"]])
        assert session.breaker.state == "open"
        assert session.breaker.stats()["reopened"] == 1
        with pytest.raises(CircuitOpen):
            session.update(inserted=[[6102, 44, "Z1", "X"]])


# -- integrity scrubber -------------------------------------------------------


def test_scrubber_quarantines_drifted_session_and_spares_the_rest(tmp_path):
    service = DetectionService(data_dir=tmp_path)
    try:
        service.create_session("t", "bad", spec(base_rows(30)))
        service.create_session("t", "good", spec(base_rows(30)))
        with fault_plan(FaultPlan.parse("verify-drift@0")):
            outcome = service.scrubber.scrub_now()
        assert outcome["quarantined"] == ["t/bad"]

        # the condemned durable state moved to .quarantine/ as evidence
        quarantine = tmp_path / ".quarantine"
        assert quarantine.is_dir() and any(quarantine.iterdir())

        # the tombstoned key fails typed; everyone else keeps serving
        with pytest.raises(SessionQuarantined):
            service.update("t", "bad", inserted=[[8000, 44, "Z1", "X"]])
        with pytest.raises(SessionQuarantined):
            service.detect("t", "bad")
        assert service.update(
            "t", "good", inserted=[[8001, 44, "Z1", "X"]]
        )["coalesced"] == 1

        health = service.health()
        assert health["ok"] is False and health["quarantined"] == ["t/bad"]
        scrub = service.stats()["scrubber"]
        assert scrub["drifted"] == 1 and scrub["quarantined"] == 1

        # re-creating the name is a fresh start: tombstone cleared
        service.create_session("t", "bad", spec(base_rows(30)))
        assert service.detect("t", "bad")["n_violations"] >= 0
        assert service.health()["ok"] is True
    finally:
        service.close()


def test_scrubber_skips_busy_sessions():
    service = DetectionService()
    try:
        service.create_session("t", "s", spec(base_rows(20)))
        session = service.registry.get("t", "s")
        session._pending.append(_Ticket([], [], 0))  # foreground queued
        with fault_plan(FaultPlan.parse("verify-drift@0")):
            outcome = service.scrubber.scrub_now()
        assert outcome == {"scrubbed": 0, "skipped": 1, "quarantined": []}
        session._pending.clear()
        # the drift order was not consumed by the skipped session: a
        # quieter round still catches it
        with fault_plan(FaultPlan.parse("verify-drift@0")):
            assert service.scrubber.scrub_now()["quarantined"] == ["t/s"]
    finally:
        service.close()


# -- slow create out from under the registry lock -----------------------------


def test_slow_create_does_not_block_other_sessions(monkeypatch):
    service = DetectionService()
    try:
        service.create_session("t", "fast", spec(base_rows(20)))
        entered, release = threading.Event(), threading.Event()
        original = ManagedSession._build

        def slow_build(self, build_spec, fragments):
            if self.name == "slow":
                entered.set()
                assert release.wait(10)
            return original(self, build_spec, fragments)

        monkeypatch.setattr(ManagedSession, "_build", slow_build)
        created: list = []
        creator = threading.Thread(
            target=lambda: created.append(
                service.create_session("t", "slow", spec(base_rows(20)))
            )
        )
        creator.start()
        assert entered.wait(10)

        # the giant create is folding outside the registry lock: other
        # sessions stay reachable without waiting on it
        start = time.perf_counter()
        assert service.detect("t", "fast")["n_violations"] >= 0
        assert time.perf_counter() - start < 2.0

        # the in-flight name is reserved but not yet addressable
        with pytest.raises(UnknownSession):
            service.detect("t", "slow")
        with pytest.raises(DuplicateSession):
            service.create_session("t", "slow", spec(base_rows(20)))

        release.set()
        creator.join(timeout=10)
        assert created and created[0]["session"] == "slow"
        assert service.detect("t", "slow")["n_violations"] >= 0
    finally:
        release.set()
        service.close()


def test_failed_create_rolls_back_its_placeholder():
    service = DetectionService()
    try:
        with pytest.raises(BadSessionSpec):
            service.create_session(
                "t", "s", {"schema": SCHEMA, "cfds": ["not a cfd"], "rows": []}
            )
        # the reserved key was released: the name is free again
        service.create_session("t", "s", spec(base_rows(10)))
    finally:
        service.close()


# -- HTTP surfaces ------------------------------------------------------------


def http(base: str, method: str, path: str, body=None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(base + path, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=30) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), error.headers


def test_http_governor_surfaces():
    service = DetectionService(max_rows=5, breaker=1, cooldown=30.0)
    instance = serve_http(service, max_body=4096)
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = instance.server_address
        base = f"http://{host}:{port}"

        # 413: the declared body over REPRO_SERVE_MAX_BODY is rejected
        # before a byte of it is read
        status, payload, _ = http(
            base, "POST", "/v1/t/sessions/big", spec(base_rows(300))
        )
        assert status == 413 and "cap" in payload["error"]

        status, _, _ = http(
            base, "POST", "/v1/t/sessions/s", spec(base_rows(20))
        )
        assert status == 201  # the connection survived the 413 cleanly

        # 429 + Retry-After: rows-per-update quota
        status, payload, headers = http(
            base, "POST", "/v1/t/sessions/s/update",
            {"inserted": [[3000 + i, 44, "Z1", "X"] for i in range(6)]},
        )
        assert status == 429
        assert headers.get("Retry-After") is not None
        assert "rows per update" in payload["error"]

        # trip the breaker (threshold 1) through the real fold path,
        # then observe 503 + Retry-After and a truthful /healthz
        with fault_plan(FaultPlan.parse("fold-fail@0")):
            status, _, _ = http(
                base, "POST", "/v1/t/sessions/s/update",
                {"inserted": [[3100, 44, "Z1", "X"]]},
            )
            assert status == 500  # the injected fold failure itself
        status, payload, headers = http(
            base, "POST", "/v1/t/sessions/s/update",
            {"inserted": [[3101, 44, "Z1", "X"]]},
        )
        assert status == 503
        assert headers.get("Retry-After") is not None
        assert "circuit open" in payload["error"]

        status, health, _ = http(base, "GET", "/healthz")
        assert status == 503
        assert health["ok"] is False and health["breakers_open"] == ["t/s"]
        status, live, _ = http(base, "GET", "/healthz?live=1")
        assert status == 200 and live["live"] is True
    finally:
        instance.shutdown()
        service.close()
        instance.server_close()


# -- the harness client's 429 retry loop --------------------------------------


class _Response:
    def __init__(self, payload: dict) -> None:
        self._payload = payload

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def read(self) -> bytes:
        return json.dumps(self._payload).encode()


def _http_error(code: int, retry_after: str | None = None):
    headers = Message()
    if retry_after is not None:
        headers["Retry-After"] = retry_after
    return urllib.error.HTTPError(
        "http://test/", code, "status", headers, io.BytesIO(b"{}")
    )


def _scripted_opener(script: list):
    def opener(request, timeout=None):
        outcome = script.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    return opener


def test_request_json_retries_429_with_capped_retry_after():
    script = [
        _http_error(429, "0.01"),
        _http_error(429, "9999"),  # adversarial backoff: must be capped
        _http_error(429, "soon"),  # malformed: falls back to a tiny pause
        _Response({"ok": True}),
    ]
    backpressured = [0]
    start = time.perf_counter()
    result = request_json(
        object(),
        opener=_scripted_opener(script),
        on_backpressure=lambda: backpressured.__setitem__(
            0, backpressured[0] + 1
        ),
        max_retry_after=0.05,
    )
    elapsed = time.perf_counter() - start
    assert result == {"ok": True}
    assert backpressured[0] == 3
    assert not script  # every scripted step was consumed
    assert elapsed < 2.0  # the 9999s Retry-After was capped, not honored


def test_request_json_fails_fast_on_circuit_open_503():
    script = [_http_error(503, "30"), _Response({"never": "reached"})]
    with pytest.raises(urllib.error.HTTPError) as failed:
        request_json(object(), opener=_scripted_opener(script))
    assert failed.value.code == 503
    assert len(script) == 1  # no retry consumed the success


# -- stats surfaces -----------------------------------------------------------


def test_stats_expose_governor_scrubber_and_breakers():
    service = DetectionService(rate=50.0, deadline=0.5)
    try:
        service.create_session("t", "s", spec(base_rows(10)))
        stats = service.stats()
        assert stats["governor"]["rate"] == 50.0
        assert stats["governor"]["deadline"] == 0.5
        assert set(stats["governor"]["shed"]) == {
            "rate", "rows", "tickets", "sessions", "deadline"
        }
        assert stats["scrubber"]["enabled"] is False
        assert stats["sessions"]["t/s"]["breaker"]["state"] == "closed"
    finally:
        service.close()
