"""Unit tests for repro.relational.relation."""

import pytest

from repro.relational import Eq, Relation, Schema, SchemaError

R = Schema("R", ["id", "x", "y"], key=["id"])


def rel(rows):
    return Relation(R, rows)


def test_rows_must_fit_schema_width():
    with pytest.raises(SchemaError):
        rel([(1, 2)])


def test_from_and_to_dicts_roundtrip():
    records = [{"id": 1, "x": "a", "y": 10}, {"id": 2, "x": "b", "y": 20}]
    relation = Relation.from_dicts(R, records)
    assert relation.to_dicts() == records


def test_value_lookup():
    relation = rel([(1, "a", 10)])
    assert relation.value(relation.rows[0], "y") == 10


def test_select_with_predicate_object():
    relation = rel([(1, "a", 10), (2, "b", 20)])
    selected = relation.select(Eq("x", "b"))
    assert selected.rows == [(2, "b", 20)]


def test_select_with_callable():
    relation = rel([(1, "a", 10), (2, "b", 20)])
    selected = relation.select(lambda row, schema: row[schema.position("y")] > 15)
    assert selected.rows == [(2, "b", 20)]


def test_project_preserves_duplicates_by_default():
    relation = rel([(1, "a", 10), (2, "a", 10)])
    projected = relation.project(["x", "y"])
    assert projected.rows == [("a", 10), ("a", 10)]


def test_project_dedupe():
    relation = rel([(1, "a", 10), (2, "a", 10)])
    projected = relation.project(["x", "y"], dedupe=True)
    assert projected.rows == [("a", 10)]


def test_project_reorders_columns():
    relation = rel([(1, "a", 10)])
    projected = relation.project(["y", "id"])
    assert projected.rows == [(10, 1)]
    assert projected.schema.attributes == ("y", "id")


def test_union_requires_same_attributes():
    other = Relation(Schema("S", ["a"]), [(1,)])
    with pytest.raises(SchemaError):
        rel([]).union(other)


def test_union_is_bag_union():
    a = rel([(1, "a", 10)])
    b = rel([(1, "a", 10)])
    assert len(a.union(b)) == 2


def test_distinct():
    relation = rel([(1, "a", 10), (1, "a", 10), (2, "b", 20)])
    assert len(relation.distinct()) == 2


def test_join_on_key_reconstructs():
    left = Relation(Schema("L", ["id", "x"], key=["id"]), [(1, "a"), (2, "b")])
    right = Relation(Schema("R2", ["id", "y"], key=["id"]), [(2, 20), (1, 10)])
    joined = left.join(right)
    assert sorted(joined.rows) == [(1, "a", 10), (2, "b", 20)]
    assert joined.schema.attributes == ("id", "x", "y")


def test_join_drops_unmatched():
    left = Relation(Schema("L", ["id", "x"], key=["id"]), [(1, "a")])
    right = Relation(Schema("R2", ["id", "y"], key=["id"]), [(2, 20)])
    assert len(left.join(right)) == 0


def test_join_rejects_duplicate_payload_attributes():
    left = Relation(Schema("L", ["id", "x"], key=["id"]), [(1, "a")])
    right = Relation(Schema("R2", ["id", "x"], key=["id"]), [(1, "b")])
    with pytest.raises(SchemaError):
        left.join(right)


def test_group_by():
    relation = rel([(1, "a", 10), (2, "a", 20), (3, "b", 30)])
    groups = relation.group_by(["x"])
    assert set(groups) == {("a",), ("b",)}
    assert len(groups[("a",)]) == 2


def test_sorted_by():
    relation = rel([(2, "b", 20), (1, "a", 10)])
    assert relation.sorted_by(["x"]).rows[0][1] == "a"


def test_sorted_by_orders_numbers_numerically():
    # regression: stringified sorting ordered numeric columns 1, 10, 2
    relation = rel([(1, "a", 10), (2, "b", 2), (3, "c", 1)])
    assert [row[2] for row in relation.sorted_by(["y"]).rows] == [1, 2, 10]


def test_sorted_by_mixed_types_is_stable():
    relation = rel([(1, "a", "x"), (2, "b", 10), (3, "c", 2), (4, "d", None)])
    ordered = [row[2] for row in relation.sorted_by(["y"]).rows]
    assert ordered == [2, 10, None, "x"]  # numbers first, then by type name


def test_equality_is_order_insensitive():
    assert rel([(1, "a", 10), (2, "b", 20)]) == rel([(2, "b", 20), (1, "a", 10)])


def test_pretty_renders_header_and_rows():
    text = rel([(1, "a", 10)]).pretty()
    assert "id" in text and "a" in text


def test_pretty_truncates():
    relation = rel([(i, "x", i) for i in range(30)])
    assert "more rows" in relation.pretty(limit=5)
