"""Property-based differential suite: reference ≡ fused ≡ fused-numpy ≡ sql.

The reference engine is the executable spec; the fused engine, its
vectorized twin and the database-backed ``sql`` engine must reproduce it
bit-for-bit — violations *and* collected tuple keys — on every input.
This module drives all four engines over random relations and CFD sets
covering the paths where the backends genuinely diverge in implementation:

* eCFD predicate entries (``OneOf`` / ``NotValue`` / ``Range``) on both
  sides of the pattern;
* mixed int/str columns, which the vectorized encoder must refuse
  (``np.asarray`` would silently stringify) and route through the
  dictionary loop;
* both horizontal partition kinds, empty relations and fragments,
  single-row X-groups, and all-identical columns;
* warm re-detection on a cached store (the vectorized folds switch their
  tuple-key collection strategy on the second run; the sql engine reuses
  its per-relation database handle);
* relations with ``None`` cells — SQL three-valued logic vs the in-memory
  engines' "None is an ordinary value" contract (the null-safe compilation
  strategy is documented in :mod:`repro.core.sql`).

The ``sql`` legs run on stdlib sqlite3 alone; when duckdb is importable
they run again against it (and skip cleanly when it is not).

``VECTORIZE_MIN_ROWS`` is forced to 0 for the whole module so the
hypothesis-sized relations actually take the vectorized encode and fold
paths; the columnar unit tests at the bottom pin the two encoders to the
identical first-seen-order output.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core import (
    CFD,
    NotValue,
    OneOf,
    PatternTuple,
    Range,
    WILDCARD,
    detect_violations,
    detect_violations_sql,
    duckdb_enabled,
)
from repro.core import SQLEngineError
from repro.partition import partition_by_attribute, partition_uniform
from repro.relational import Relation, Schema, column_store, numpy_enabled
from repro.relational import columnar

ATTRS = ("a", "b", "c", "d")
SCHEMA = Schema("R", ("id",) + ATTRS, key=("id",))
#: mixed domain: int-only draws exercise the vectorized encoder, draws with
#: strings exercise its fallback — both against the same oracle
VALUES = [0, 1, 2, "x", "y"]


@pytest.fixture(scope="module", autouse=True)
def vectorize_tiny_relations():
    """Drop the vectorization threshold so hypothesis-sized inputs hit the
    numpy encode and fold paths instead of the small-relation shortcut."""
    patcher = pytest.MonkeyPatch()
    patcher.setattr(columnar, "VECTORIZE_MIN_ROWS", 0)
    yield
    patcher.undo()


def engines():
    names = ["reference", "fused"]
    if numpy_enabled():
        names.append("fused-numpy")
    names.append("sql")
    return names


def assert_engines_agree(relation, sigma):
    expected = detect_violations(relation, sigma, engine="reference")
    for engine in engines()[1:]:
        # twice per engine: the second run folds over a warm columnar
        # store (or, for sql, a warm per-relation database handle)
        for _ in range(2):
            report = detect_violations(relation, sigma, engine=engine)
            assert report.violations == expected.violations, engine
            assert report.tuple_keys == expected.tuple_keys, engine
    if duckdb_enabled():
        try:
            report = detect_violations_sql(relation, sigma, backend="duckdb")
        except SQLEngineError:
            pass  # mixed-type columns duckdb cannot store; sqlite covered it
        else:
            assert report.violations == expected.violations, "sql/duckdb"
            assert report.tuple_keys == expected.tuple_keys, "sql/duckdb"


rows = st.lists(
    st.tuples(*[st.sampled_from(VALUES) for _ in ATTRS]),
    min_size=0,
    max_size=24,
)


@st.composite
def relations(draw):
    body = draw(rows)
    return Relation(SCHEMA, [(i,) + r for i, r in enumerate(body)])


@st.composite
def pattern_entries(draw):
    kind = draw(st.integers(0, 6))
    if kind == 0:
        return WILDCARD
    if kind == 1:
        return OneOf(draw(st.sets(st.sampled_from(VALUES), min_size=1, max_size=2)))
    if kind == 2:
        return NotValue(draw(st.sampled_from(VALUES)))
    if kind == 3:
        return Range(draw(st.sampled_from(["<", "<=", ">", ">="])), draw(st.integers(0, 2)))
    return draw(st.sampled_from(VALUES))


@st.composite
def cfds(draw):
    lhs_size = draw(st.integers(1, 3))
    attrs = draw(st.permutations(ATTRS).map(lambda p: list(p[: lhs_size + 1])))
    lhs, rhs = attrs[:-1], [attrs[-1]]
    n_patterns = draw(st.integers(1, 3))
    tableau = [
        PatternTuple(
            [draw(pattern_entries()) for _ in lhs],
            [draw(pattern_entries()) for _ in rhs],
        )
        for _ in range(n_patterns)
    ]
    return CFD(lhs, rhs, tableau, name=f"cfd{draw(st.integers(0, 10 ** 6))}")


SETTINGS = settings(max_examples=100, deadline=None)


@SETTINGS
@given(relations(), st.lists(cfds(), min_size=1, max_size=3))
def test_engines_agree_centralized(relation, sigma):
    assert_engines_agree(relation, sigma)


@SETTINGS
@given(relations(), st.lists(cfds(), min_size=1, max_size=3), st.integers(1, 4))
def test_engines_agree_on_uniform_fragments(relation, sigma, n_sites):
    for site in partition_uniform(relation, n_sites).sites:
        assert_engines_agree(site.fragment, sigma)


@SETTINGS
@given(relations(), st.lists(cfds(), min_size=1, max_size=3))
def test_engines_agree_on_attribute_fragments(relation, sigma):
    for site in partition_by_attribute(relation, "a").sites:
        assert_engines_agree(site.fragment, sigma)


# -- NULL semantics: sql three-valued logic vs "None is a value" -------------

#: like VALUES but with None cells — the domain where SQL's three-valued
#: logic diverges hardest from the in-memory engines' contract (None equals
#: itself, differs from everything, never orders)
NULL_VALUES = [0, 1, "x", None]

null_rows = st.lists(
    st.tuples(*[st.sampled_from(NULL_VALUES) for _ in ATTRS]),
    min_size=0,
    max_size=24,
)


@st.composite
def null_relations(draw):
    body = draw(null_rows)
    return Relation(SCHEMA, [(i,) + r for i, r in enumerate(body)])


@st.composite
def null_pattern_entries(draw):
    kind = draw(st.integers(0, 7))
    if kind == 0:
        return WILDCARD
    if kind == 1:
        return OneOf(
            draw(st.sets(st.sampled_from(NULL_VALUES), min_size=1, max_size=3))
        )
    if kind == 2:
        return NotValue(draw(st.sampled_from(NULL_VALUES)))
    if kind == 3:
        # int and str bounds: the sqlite typeof-guard must keep cross-type
        # (and NULL) comparisons out, like Python's TypeError -> no match
        return Range(
            draw(st.sampled_from(["<", "<=", ">", ">="])),
            draw(st.sampled_from([0, 1, "x"])),
        )
    return draw(st.sampled_from(NULL_VALUES))


@st.composite
def null_cfds(draw):
    lhs_size = draw(st.integers(1, 3))
    attrs = draw(st.permutations(ATTRS).map(lambda p: list(p[: lhs_size + 1])))
    lhs, rhs = attrs[:-1], [attrs[-1]]
    tableau = [
        PatternTuple(
            [draw(null_pattern_entries()) for _ in lhs],
            [draw(null_pattern_entries()) for _ in rhs],
        )
        for _ in range(draw(st.integers(1, 3)))
    ]
    return CFD(lhs, rhs, tableau, name=f"null{draw(st.integers(0, 10 ** 6))}")


@SETTINGS
@given(null_relations(), st.lists(null_cfds(), min_size=1, max_size=3))
def test_engines_agree_with_null_cells(relation, sigma):
    assert_engines_agree(relation, sigma)


def test_null_groups_and_keys_deterministic():
    """None is an X value and a Y value like any other: a group keyed on
    None conflicts iff its Y values differ, where None != 0 counts as a
    difference but None == None does not."""
    relation = Relation(
        SCHEMA,
        [
            (0, None, None, 0, 0),
            (1, None, None, 0, 1),  # same (None, None) on a,b: no conflict
            (2, None, 0, 0, 2),  # b flips None -> 0: conflict on X=None
            (3, "x", None, None, 3),
            (4, "x", None, None, 4),
        ],
    )
    sigma = [CFD(["a"], ["b"], name="phi")]
    assert_engines_agree(relation, sigma)
    report = detect_violations(relation, sigma, engine="sql")
    assert report.violations == detect_violations(
        relation, sigma, engine="reference"
    ).violations
    assert {v.lhs_values for v in report.violations} == {(None,)}
    assert report.tuple_keys == {(0,), (1,), (2,)}


def test_null_constant_rhs_violation():
    """A None cell violates a constant RHS pattern (no match -> violated),
    and a None RHS constant is only satisfied by a None cell."""
    relation = Relation(
        SCHEMA,
        [(0, 1, None, 0, 0), (1, 1, "x", 0, 0), (2, 2, None, 0, 0)],
    )
    sigma = [
        CFD(["a"], ["b"], [PatternTuple((1,), ("x",))], name="want_x"),
        CFD(["a"], ["b"], [PatternTuple((2,), (None,))], name="want_null"),
    ]
    assert_engines_agree(relation, sigma)
    report = detect_violations(relation, sigma, engine="sql")
    assert {(v.cfd, v.lhs_values) for v in report.violations} == {
        ("want_x", (1,))
    }
    assert report.tuple_keys == {(0,)}


# -- deterministic edge cases -------------------------------------------------


def test_empty_relation():
    assert_engines_agree(Relation(SCHEMA, []), [CFD(["a"], ["b"], name="phi")])


def test_single_row_x_groups():
    """Every X value distinct: no pairwise violation is possible."""
    relation = Relation(SCHEMA, [(i, i, i % 2, 0, 0) for i in range(12)])
    sigma = [CFD(["a"], ["b"], name="phi"), CFD(["a", "b"], ["c"], name="psi")]
    assert_engines_agree(relation, sigma)
    assert detect_violations(relation, sigma, engine="fused").is_clean()


def test_all_identical_columns():
    """One X group covering the whole relation, one shared Y value."""
    relation = Relation(SCHEMA, [(i, 1, 1, 1, 1) for i in range(10)])
    sigma = [CFD(["a"], ["b"], name="phi")]
    assert_engines_agree(relation, sigma)
    # flip one RHS value: the single group now conflicts, all rows violate
    broken = Relation(SCHEMA, [(i, 1, 1 + (i == 9), 1, 1) for i in range(10)])
    assert_engines_agree(broken, sigma)
    report = detect_violations(broken, sigma)
    assert report.tuple_keys == {(i,) for i in range(10)}


def test_absent_constant_drops_out():
    relation = Relation(SCHEMA, [(0, 1, 1, 0, 0), (1, 2, 0, 1, 2)])
    cfd = CFD(["a"], ["b"], [PatternTuple((99,), (5,))], name="phi")
    assert_engines_agree(relation, [cfd])


def test_large_int_float_mix_does_not_conflate():
    """An int/float mix upcasts to float64, where ints beyond 2**53 collapse
    onto the same float; the vectorized encoder must detect the lossy round
    trip and fall back, or fused-numpy silently misses violations.  The
    float sits in the same column as the huge ints so the whole column
    upcasts, and the two ints differ only below float64 precision."""
    relation = Relation(
        SCHEMA,
        [(0, 1, 2 ** 60, 0, 0), (1, 1, 2 ** 60 + 1, 0, 0), (2, 2, 0.5, 0, 0)],
    )
    sigma = [CFD(["a"], ["b"], name="phi")]
    assert_engines_agree(relation, sigma)
    report = detect_violations(relation, sigma, engine="reference")
    assert len(report.violations) == 1 and report.tuple_keys == {(0,), (1,)}


def test_constant_and_variable_hits_in_one_shot_detection():
    """First detection with both constant and variable collections: the
    breadcrumb is resolved per call, and the combined report matches."""
    relation = Relation(
        SCHEMA, [(0, 1, 5, 0, 0), (1, 1, 1, 0, 1), (2, 1, 1, 0, 2)]
    )
    sigma = [
        CFD(["a"], ["b"], [PatternTuple((1,), (9,))], name="const"),
        CFD(["a", "c"], ["d"], name="var"),
    ]
    assert_engines_agree(relation, sigma)


def test_mixed_type_key_columns():
    """Composite X over a mixed int/str column: vectorized combine still
    applies on top of the dictionary-encoded column codes."""
    body = [(0, "x"), (1, "x"), (0, "x"), (1, 2), (0, 2), ("x", 2)]
    relation = Relation(
        SCHEMA, [(i, a, b, 0, i) for i, (a, b) in enumerate(body)]
    )
    sigma = [CFD(["a", "b"], ["d"], name="phi")]
    assert_engines_agree(relation, sigma)


@pytest.mark.skipif(not numpy_enabled(), reason="needs numpy")
def test_explicit_fused_numpy_requires_numpy(monkeypatch):
    relation = Relation(SCHEMA, [(0, 1, 1, 0, 0)])
    cfd = CFD(["a"], ["b"], name="phi")
    monkeypatch.setenv("REPRO_NUMPY", "0")
    with pytest.raises(RuntimeError):
        detect_violations(relation, cfd, engine="fused-numpy")
    # auto falls back to the Python folds instead of raising
    detect_violations(relation, cfd, engine="auto")


# -- columnar backend equivalence ---------------------------------------------


def both_stores(rows_, n_attrs=3):
    """The same rows encoded by the vectorized and the dictionary backend."""
    schema = Schema("R", ("id",) + ATTRS[:n_attrs], key=("id",))
    vec = column_store(Relation(schema, rows_))
    patcher = pytest.MonkeyPatch()
    patcher.setattr(columnar, "VECTORIZE_MIN_ROWS", 10 ** 9)
    try:
        plain = column_store(Relation(schema, rows_))
    finally:
        patcher.undo()
    return vec, plain


@pytest.mark.skipif(not numpy_enabled(), reason="needs numpy")
def test_vectorized_encode_matches_dictionary_encode():
    rows_ = [(i, i % 7, (i * 3) % 5, i % 2) for i in range(500)]
    vec, plain = both_stores(rows_)
    for attr in ("a", "b", "c"):
        left, right = vec.column(attr), plain.column(attr)
        assert left._codes_np is not None, "vectorized encode should run"
        assert left.codes == right.codes  # first-seen order preserved
        assert left.values == right.values
        assert left.code_of == right.code_of
    key_vec = vec.key_column(("a", "b", "c"))
    key_plain = plain.key_column(("a", "b", "c"))
    assert key_vec.codes == key_plain.codes
    assert key_vec.values == key_plain.values
    assert vec.group_index(("a", "b")) == plain.group_index(("a", "b"))
    assert list(vec.group_index(("a", "b"))) == list(plain.group_index(("a", "b")))


@pytest.mark.skipif(not numpy_enabled(), reason="needs numpy")
def test_vectorized_encode_fallbacks():
    mixed = [(i, "s" if i % 2 else i, 1.5, float("nan")) for i in range(40)]
    vec, plain = both_stores(mixed)
    for attr in ("a", "c"):  # mixed and NaN columns take the dictionary loop
        assert vec.column(attr)._codes_np is None
        assert vec.column(attr).codes == plain.column(attr).codes
    assert vec.column("b")._codes_np is not None  # clean floats vectorize
    # the lazily-built array view agrees with the list view
    assert vec.column("a").codes_array().tolist() == vec.column("a").codes


@pytest.mark.skipif(not numpy_enabled(), reason="needs numpy")
def test_code_arrays_are_cached_and_int32():
    import numpy as np

    rows_ = [(i, i % 3, i % 4, 0) for i in range(300)]
    store = column_store(Relation(Schema("R", ("id",) + ATTRS[:3], key=("id",)), rows_))
    column = store.column("a")
    assert column.codes_array() is column.codes_array()
    assert column.codes_array().dtype == np.int32
    key = store.key_column(("a", "b"))
    assert key.codes_array() is key.codes_array()
    assert key.codes_array().dtype == np.int32
