"""Property suite for incremental detection (centralized + distributed).

The acceptance property: for random relations, Σ and random insert/delete
batches — including values the shared dictionaries have never seen — the
incrementally maintained state after N updates is **identical** to a full
recompute on the final relation: violations, violating tuple keys, and
(for the distributed sessions) the coordinator GROUP-BY state a fresh run
would rebuild.  Driven across all three engines, serial and with the
``REPRO_WORKERS=4`` scheduler active.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core import (
    CFD,
    IncrementalDetector,
    PatternTuple,
    TransitionCounter,
    WILDCARD,
    detect_violations_reference,
)
from repro.core.incremental import ViolationDelta
from repro.detect import (
    IncrementalHorizontalDetector,
    ctr_detect,
    pat_detect_rt,
    pat_detect_s,
)
from repro.distributed import Cluster
from repro.partition import partition_uniform
from repro.relational import Relation, Schema, numpy_enabled

ATTRS = ("a", "b", "c")
SCHEMA = Schema("R", ("id",) + ATTRS, key=("id",))
#: base domain; update batches additionally mint values outside it (so the
#: dictionaries and σ tries must absorb genuinely unseen values)
VALUES = [0, 1, 2, "x"]
FRESH = ["Δ1", "Δ2", 99]

ONE_SHOT = {"ctr": ctr_detect, "pat-s": pat_detect_s, "pat-rt": pat_detect_rt}


def engines():
    names = ["reference", "fused"]
    if numpy_enabled():
        names.append("fused-numpy")
    return names


@st.composite
def cfds(draw):
    lhs = tuple(draw(st.permutations(ATTRS)))[: draw(st.integers(1, 2))]
    rhs_pool = [a for a in ATTRS if a not in lhs]
    rhs = (draw(st.sampled_from(rhs_pool)),)
    entries = st.sampled_from([WILDCARD] + VALUES)
    tableau = [
        PatternTuple(
            tuple(draw(entries) for _ in lhs),
            (draw(st.sampled_from([WILDCARD] + VALUES)),),
        )
        for _ in range(draw(st.integers(1, 3)))
    ]
    return CFD(lhs, rhs, tableau, name=f"cfd{draw(st.integers(0, 99))}")


def rows_strategy(start_id=0, domain=VALUES):
    return st.lists(
        st.tuples(*[st.sampled_from(domain) for _ in ATTRS]),
        min_size=0,
        max_size=14,
    ).map(
        lambda bodies: [
            (start_id + i,) + body for i, body in enumerate(bodies)
        ]
    )


@st.composite
def update_scripts(draw):
    """N batches of (inserted rows, deleted key fraction)."""
    steps = []
    for step in range(draw(st.integers(1, 3))):
        inserted = draw(
            rows_strategy(start_id=1000 + 100 * step, domain=VALUES + FRESH)
        )
        delete_ratio = draw(st.floats(0, 1))
        steps.append((inserted, delete_ratio))
    return steps


def run_script(detector_update, current_rows, script, rng_keys):
    """Apply every batch; returns the final row list (the oracle input)."""
    rows = list(current_rows)
    for inserted, delete_ratio in script:
        keys = [row[0] for row in rows]
        n_delete = int(len(keys) * delete_ratio)
        doomed = set(keys[:n_delete])
        detector_update(inserted, sorted(doomed))
        rows = [row for row in rows if row[0] not in doomed] + list(inserted)
    return rows


@settings(deadline=None, max_examples=40)
@given(
    rows_strategy(),
    st.lists(cfds(), min_size=1, max_size=2),
    update_scripts(),
)
def test_incremental_equals_full_recompute_all_engines(rows, sigma, script):
    relation = Relation(SCHEMA, rows)
    for engine in engines():
        detector = IncrementalDetector(sigma, engine=engine)
        detector.attach(relation)
        final_rows = run_script(
            lambda ins, dels: detector.update(inserted=ins, deleted=dels),
            rows,
            script,
            None,
        )
        oracle = detect_violations_reference(Relation(SCHEMA, final_rows), sigma)
        report = detector.report
        assert report.violations == oracle.violations, engine
        assert report.tuple_keys == oracle.tuple_keys, engine
        assert sorted(map(repr, detector.relation.rows)) == sorted(
            map(repr, final_rows)
        )


@settings(deadline=None, max_examples=20)
@given(
    rows_strategy(),
    st.lists(cfds(), min_size=1, max_size=2),
    update_scripts(),
)
def test_incremental_equals_full_recompute_with_workers(
    monkeypatch_workers, rows, sigma, script
):
    relation = Relation(SCHEMA, rows)
    detector = IncrementalDetector(sigma)
    detector.attach(relation)
    final_rows = run_script(
        lambda ins, dels: detector.update(inserted=ins, deleted=dels),
        rows,
        script,
        None,
    )
    oracle = detect_violations_reference(Relation(SCHEMA, final_rows), sigma)
    assert detector.report.violations == oracle.violations
    assert detector.report.tuple_keys == oracle.tuple_keys


@pytest.fixture(scope="module")
def monkeypatch_workers():
    patcher = pytest.MonkeyPatch()
    patcher.setenv("REPRO_WORKERS", "4")
    patcher.setenv("REPRO_PARALLEL", "thread")
    yield
    patcher.undo()


@settings(deadline=None, max_examples=25)
@given(
    rows_strategy(),
    cfds(),
    update_scripts(),
    st.sampled_from(["ctr", "pat-s", "pat-rt"]),
    st.integers(1, 4),
)
def test_distributed_incremental_equals_fresh_run(
    rows, cfd, script, algorithm, n_sites
):
    relation = Relation(SCHEMA, rows)
    cluster = partition_uniform(relation, n_sites)
    session = IncrementalHorizontalDetector(cluster, cfd, algorithm)
    initial = session.detect()

    one_shot = ONE_SHOT[algorithm](partition_uniform(relation, n_sites), cfd)
    assert initial.report.violations == one_shot.report.violations
    assert initial.report.tuple_keys == one_shot.report.tuple_keys
    assert initial.shipments.tuples_shipped == one_shot.shipments.tuples_shipped
    assert initial.shipments.codes_shipped == one_shot.shipments.codes_shipped

    site = 0
    for step, (inserted, delete_ratio) in enumerate(script):
        site = (site + 1) % n_sites
        fragment = session.fragments[site]
        keys = [row[0] for row in fragment.rows]
        doomed = keys[: int(len(keys) * delete_ratio)]
        update = session.update(site, inserted=inserted, deleted=doomed)
        # delta shipments are bounded by the delta, not the fragments
        delta_rows = len(inserted) + len(doomed)
        assert update.shipments.tuples_shipped <= delta_rows
        assert update.shipments.codes_shipped <= 3 * delta_rows

    fresh_cluster = Cluster.from_fragments(
        [Relation(SCHEMA, fragment.rows) for fragment in session.fragments]
    )
    fresh = ONE_SHOT[algorithm](fresh_cluster, cfd)
    assert session.report.violations == fresh.report.violations
    assert session.report.tuple_keys == fresh.report.tuple_keys

    # the patched coordinator state equals a from-scratch session's state
    rebuilt = IncrementalHorizontalDetector(fresh_cluster, cfd, algorithm)
    rebuilt.detect()
    for live, scratch in zip(session._variables, rebuilt._variables):
        decode = lambda state, counts: {
            (state.shared.x_values[x], state.shared.y_values[y]): n
            for x, ys in counts.items()
            for y, n in ys.items()
        }
        assert decode(live, live.pair_counts) == decode(
            scratch, scratch.pair_counts
        )


# -- units --------------------------------------------------------------------


def test_transition_counter_captures_zero_crossings():
    counter = TransitionCounter()
    counter.add("stays", 2)
    counter.begin()
    counter.add("stays", -1)       # 2 -> 1: still positive
    counter.add("fresh", 1)        # 0 -> 1: added
    counter.add("blip", 1)
    counter.add("blip", -1)        # 0 -> 1 -> 0: net nothing
    added, removed = counter.commit()
    assert added == ["fresh"]
    assert removed == []
    counter.begin()
    counter.add("stays", -1)       # 1 -> 0: removed
    added, removed = counter.commit()
    assert (added, removed) == ([], ["stays"])


def test_transition_counter_rejects_underflow():
    counter = TransitionCounter()
    counter.begin()
    with pytest.raises(ValueError):
        counter.add("ghost", -1)


def test_violation_delta_truthiness():
    assert not ViolationDelta()
    delta = ViolationDelta()
    delta.added.add_tuple_key(("k",))
    assert delta


def test_apply_requires_chained_delta():
    relation = Relation(SCHEMA, [(1, 0, 0, 0)])
    detector = IncrementalDetector(
        [CFD(("a",), ("b",), [PatternTuple((WILDCARD,), (WILDCARD,))])]
    )
    detector.attach(relation)
    with pytest.raises(ValueError):
        detector.apply(Relation(SCHEMA, [(2, 1, 1, 1)]))


def test_update_before_attach_raises():
    detector = IncrementalDetector(
        [CFD(("a",), ("b",), [PatternTuple((WILDCARD,), (WILDCARD,))])]
    )
    with pytest.raises(ValueError):
        detector.update(inserted=[(1, 0, 0, 0)])


def test_incremental_detector_engine_validation(monkeypatch):
    detector = IncrementalDetector(
        [CFD(("a",), ("b",), [PatternTuple((WILDCARD,), (WILDCARD,))])],
        engine="bogus",
    )
    with pytest.raises(ValueError):
        detector.attach(Relation(SCHEMA, []))


def test_delta_report_is_consistent_with_before_after():
    cfd = CFD(("a",), ("b",), [PatternTuple((WILDCARD,), (WILDCARD,))])
    relation = Relation(SCHEMA, [(1, "x", "u", 0), (2, "x", "u", 0)])
    detector = IncrementalDetector([cfd])
    before = detector.attach(relation)
    delta = detector.update(inserted=[(3, "x", "v", 0)])
    after = detector.report
    assert delta.added.violations == after.violations - before.violations
    assert delta.removed.violations == before.violations - after.violations
    assert delta.added.tuple_keys == after.tuple_keys - before.tuple_keys
    delta_back = detector.update(deleted=[3])
    assert detector.report.violations == before.violations
    assert delta_back.removed.violations == delta.added.violations


def test_distributed_detect_is_single_shot():
    relation = Relation(SCHEMA, [(1, "x", "u", 0), (2, "x", "v", 0)])
    cfd = CFD(("a",), ("b",), [PatternTuple((WILDCARD,), (WILDCARD,))])
    session = IncrementalHorizontalDetector(partition_uniform(relation, 2), cfd)
    session.detect()
    session.update(0, deleted=[1])
    with pytest.raises(ValueError):
        session.detect()
