"""Property suite for the resident CLUSTDETECT / vertical / hybrid sessions.

The acceptance property mirrors ``tests/test_incremental.py``: for random
relations, Σ and random insert/delete batches — including values the
shared dictionaries have never seen — a resident session after N update
rounds is **identical** to a fresh one-shot run over the updated
deployment: violations, tuple keys, and (for CLUSTDETECT) the patched
:class:`~repro.relational.shareddict.SharedComboDictionary`-coded
coordinator state a fresh cluster rebuild would produce.  The module
opts into the engine-matrix fixture, so every property runs once per
detection engine (the sessions' local constant folds and member GROUP-BY
states honour ``REPRO_ENGINE``), and the CI ``REPRO_WORKERS=4`` leg runs
the same properties through the parallel scheduler.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core import CFD, PatternTuple, WILDCARD
from repro.detect import (
    IncrementalClustDetector,
    IncrementalHybridDetector,
    IncrementalVerticalDetector,
    clust_detect,
    hybrid_detect,
    vertical_detect,
)
from repro.distributed import Cluster, HybridCluster
from repro.partition import partition_uniform, vertical_partition
from repro.relational import Eq, Relation, Schema

# every test in this module runs once per detection engine (see conftest)
pytestmark = pytest.mark.usefixtures("detection_engine")

ATTRS = ("a", "b", "c", "d")
SCHEMA = Schema("R", ("id",) + ATTRS, key=("id",))
#: base domain; update batches additionally mint values outside it (so the
#: append-only dictionaries must absorb genuinely unseen values)
VALUES = [0, 1, 2]
FRESH = [71, 72, 99]

SETTINGS = settings(deadline=None, max_examples=20)


def rows_strategy(start_id=0, domain=VALUES):
    return st.lists(
        st.tuples(*[st.sampled_from(domain) for _ in ATTRS]),
        min_size=0,
        max_size=14,
    ).map(
        lambda bodies: [
            (start_id + i,) + body for i, body in enumerate(bodies)
        ]
    )


@st.composite
def cfds(draw):
    """Σ whose members overlap on LHS, so CLUSTDETECT actually clusters."""
    entries = st.sampled_from([WILDCARD] + VALUES)
    sigma = []
    for k in range(draw(st.integers(1, 2))):
        lhs = list(draw(st.permutations(ATTRS)))[: draw(st.integers(1, 2))]
        rhs = [draw(st.sampled_from([a for a in ATTRS if a not in lhs]))]
        tableau = [
            PatternTuple(
                [draw(entries) for _ in lhs],
                [draw(st.sampled_from([WILDCARD] + VALUES))],
            )
            for _ in range(draw(st.integers(1, 2)))
        ]
        sigma.append(CFD(lhs, rhs, tableau, name=f"cfd{k}"))
    return sigma


@st.composite
def update_scripts(draw):
    """N batches of (inserted rows, deleted key fraction)."""
    steps = []
    for step in range(draw(st.integers(1, 3))):
        inserted = draw(
            rows_strategy(start_id=1000 + 100 * step, domain=VALUES + FRESH)
        )
        delete_ratio = draw(st.floats(0, 1))
        steps.append((inserted, delete_ratio))
    return steps


# -- CLUSTDETECT sessions -----------------------------------------------------


@SETTINGS
@given(rows_strategy(), cfds(), update_scripts(), st.integers(1, 3))
def test_clust_session_equals_fresh_rebuild(rows, sigma, script, n_sites):
    relation = Relation(SCHEMA, rows)
    cluster = partition_uniform(relation, n_sites)
    session = IncrementalClustDetector(cluster, sigma)
    initial = session.detect()

    one_shot = clust_detect(partition_uniform(relation, n_sites), sigma)
    assert initial.report.violations == one_shot.report.violations
    assert initial.report.tuple_keys == one_shot.report.tuple_keys
    assert initial.shipments.tuples_shipped == one_shot.shipments.tuples_shipped
    assert initial.shipments.codes_shipped == one_shot.shipments.codes_shipped

    site = 0
    for inserted, delete_ratio in script:
        site = (site + 1) % n_sites
        fragment = session.fragments[site]
        keys = [row[0] for row in fragment.rows]
        doomed = keys[: int(len(keys) * delete_ratio)]
        update = session.update(site, inserted=inserted, deleted=doomed)
        # delta shipments are bounded by the delta (once per CFD
        # cluster), never by the resident fragments
        assert update.shipments.tuples_shipped <= (
            len(inserted) + len(doomed)
        ) * max(1, len(session._states))

    fresh_cluster = Cluster.from_fragments(
        [Relation(SCHEMA, fragment.rows) for fragment in session.fragments]
    )
    fresh = clust_detect(fresh_cluster, sigma)
    assert session.report.violations == fresh.report.violations
    assert session.report.tuple_keys == fresh.report.tuple_keys

    # the patched shared-dictionary state equals a fresh cluster rebuild:
    # decode each coordinator's per-combination row counts through its
    # SharedComboDictionary and compare value-for-value
    rebuilt = IncrementalClustDetector(fresh_cluster, sigma)
    rebuilt.detect()
    assert len(session._states) == len(rebuilt._states)
    for live, scratch in zip(session._states, rebuilt._states):
        decode = lambda state: [
            {
                state.shared.values[code]: count
                for code, count in bucket.items()
            }
            for bucket in state.combo_counts
        ]
        assert decode(live) == decode(scratch)


# -- vertical sessions --------------------------------------------------------


VSETS = [("id", "a", "b"), ("id", "c", "d")]


@SETTINGS
@given(rows_strategy(), cfds(), update_scripts())
def test_vertical_session_equals_fresh_rebuild(rows, sigma, script):
    relation = Relation(SCHEMA, rows)
    session = IncrementalVerticalDetector(
        vertical_partition(relation, VSETS), sigma
    )
    initial = session.detect()

    one_shot = vertical_detect(vertical_partition(relation, VSETS), sigma)
    assert initial.report.violations == one_shot.report.violations
    assert initial.report.tuple_keys == one_shot.report.tuple_keys
    assert initial.shipments.tuples_shipped == one_shot.shipments.tuples_shipped

    current = list(rows)
    for inserted, delete_ratio in script:
        keys = [row[0] for row in current]
        doomed = set(keys[: int(len(keys) * delete_ratio)])
        session.update(inserted=inserted, deleted=sorted(doomed))
        current = [row for row in current if row[0] not in doomed] + list(
            inserted
        )

    fresh = vertical_detect(
        vertical_partition(Relation(SCHEMA, current), VSETS), sigma
    )
    assert session.report.violations == fresh.report.violations
    assert session.report.tuple_keys == fresh.report.tuple_keys
    # the maintained fragment versions are the fresh partition's fragments
    for fragment, site in zip(
        session.fragments, vertical_partition(Relation(SCHEMA, current), VSETS).sites
    ):
        assert sorted(map(repr, fragment.rows)) == sorted(
            map(repr, site.fragment.rows)
        )


# -- hybrid sessions ----------------------------------------------------------


HPREDICATES = {f"H{k}": Eq("a", k) for k in VALUES}
HSETS = {"V1": ["a", "b"], "V2": ["c"], "V3": ["d"]}


@SETTINGS
@given(rows_strategy(), cfds(), update_scripts())
def test_hybrid_session_equals_fresh_rebuild(rows, sigma, script):
    relation = Relation(SCHEMA, rows)
    cluster = HybridCluster.from_partitions(relation, HPREDICATES, HSETS)
    session = IncrementalHybridDetector(cluster, sigma)
    initial = session.detect()

    one_shot = hybrid_detect(
        HybridCluster.from_partitions(relation, HPREDICATES, HSETS), sigma
    )
    assert initial.report.violations == one_shot.report.violations
    assert initial.report.tuple_keys == one_shot.report.tuple_keys
    assert initial.shipments.tuples_shipped == one_shot.shipments.tuples_shipped
    assert initial.shipments.codes_shipped == one_shot.shipments.codes_shipped

    region = 0
    for step, (inserted, delete_ratio) in enumerate(script):
        region = (region + 1) % len(session.regions_data)
        # region membership is decided by the predicate on "a"
        routed = [
            (row[0],) + (region,) + row[2:] for row in inserted
        ]
        keys = [row[0] for row in session.regions_data[region].rows]
        doomed = keys[: int(len(keys) * delete_ratio)]
        update = session.update(region, inserted=routed, deleted=doomed)
        assert update.shipments.tuples_shipped <= (
            # phase 1 ships the delta into the gather site once per
            # holder and CFD, phase 2 once per pattern — bounded by a
            # small multiple of the delta
            (len(routed) + len(doomed)) * 4 * max(1, len(sigma)) * 3
        )

    merged = [
        row for data in session.regions_data for row in data.rows
    ]
    fresh = hybrid_detect(
        HybridCluster.from_partitions(
            Relation(SCHEMA, merged), HPREDICATES, HSETS
        ),
        sigma,
    )
    assert session.report.violations == fresh.report.violations
    assert session.report.tuple_keys == fresh.report.tuple_keys


# -- units --------------------------------------------------------------------


def test_clust_session_is_single_shot():
    relation = Relation(SCHEMA, [(1, 0, 0, 0, 0), (2, 0, 1, 0, 0)])
    cfd = CFD(["a"], ["b"], [PatternTuple([WILDCARD], [WILDCARD])], name="p")
    session = IncrementalClustDetector(partition_uniform(relation, 2), [cfd])
    session.detect()
    with pytest.raises(ValueError):
        session.detect()
    with pytest.raises(ValueError):
        IncrementalClustDetector(
            partition_uniform(relation, 2), [cfd]
        ).update(0, inserted=[(3, 0, 0, 0, 0)])


def test_vertical_session_rejects_predicate_deletes():
    relation = Relation(SCHEMA, [(1, 0, 0, 0, 0)])
    cfd = CFD(["a"], ["b"], [PatternTuple([WILDCARD], [WILDCARD])], name="p")
    session = IncrementalVerticalDetector(
        vertical_partition(relation, VSETS), [cfd]
    )
    session.detect()
    with pytest.raises(ValueError):
        session.update(deleted=lambda row, schema: True)


def test_hybrid_session_rejects_rows_outside_the_region():
    relation = Relation(SCHEMA, [(1, 0, 0, 0, 0), (2, 1, 0, 0, 0)])
    cfd = CFD(["a"], ["b"], [PatternTuple([WILDCARD], [WILDCARD])], name="p")
    cluster = HybridCluster.from_partitions(
        relation, {f"H{k}": Eq("a", k) for k in (0, 1)}, HSETS
    )
    session = IncrementalHybridDetector(cluster, [cfd])
    session.detect()
    with pytest.raises(ValueError):
        session.update(0, inserted=[(9, 1, 0, 0, 0)])
