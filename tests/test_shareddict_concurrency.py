"""Barrier-based concurrency stress suite for the shared dictionaries.

The cluster-scoped interning tables (:mod:`repro.relational.shareddict`)
are mutated from concurrent request threads once a resident service keeps
many sessions alive over one cluster — and, under ``REPRO_PARALLEL=thread``
with ``REPRO_WORKERS>1``, from concurrent fragment scans.  Interning is a
check-then-act sequence (probe ``code_of``, read ``len(values)``, publish
both), so without per-dictionary locks two threads can assign **two codes
to one value** or **one code to two values** — silently corrupting every
coded shipment that follows.  Likewise :func:`shared_dict_on` can build
and install two dictionaries for the same cluster key, splitting the
cluster's value↔code space in half.

Every test here drives the exact primitive through a thread barrier (all
threads released at once, with a tiny interpreter switch interval to
maximize interleavings) and then asserts the **bijectivity contract**:

* ``len(values) == len(code_of)`` — no duplicate appends;
* ``values[code_of[v]] == v`` for every interned value — codes decode to
  the value they were assigned for;
* every code any thread was handed equals the table's final code for that
  value — no thread ever shipped a code that later stopped meaning its
  value.

These tests demonstrably fail on the pre-lock implementation (PRs 3-6)
and must stay green forever after; they run in the CI chaos matrix.
"""

from __future__ import annotations

import sys
import threading

import pytest

from repro.relational.shareddict import (
    SharedColumn,
    SharedComboDictionary,
    SharedDictionary,
    SharedPairDictionary,
    shared_dict_on,
)

N_THREADS = 8
N_VALUES = 4000
#: re-align the walkers every this-many interns so all threads stay
#: contending on the *same fresh values*; measured on the pre-lock code
#: this lifts the corruption rate an order of magnitude (≈1.4 per 10^3
#: first-time interns), making every round fail with p ≈ 0.99
RESYNC_EVERY = 128
#: a handful of rounds pushes each stress test's pre-fix failure
#: probability past 99.99% while the whole (post-fix) suite stays fast
ROUNDS = 8


@pytest.fixture(autouse=True)
def _tight_thread_switching():
    """Shrink the bytecode-switch interval so interleavings actually happen.

    The default 5 ms interval lets a whole intern call finish inside one
    scheduling slice on a fast machine, hiding the race the suite exists
    to catch.
    """
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    try:
        yield
    finally:
        sys.setswitchinterval(previous)


def hammer(n_threads: int, work) -> list:
    """Run ``work(thread_index)`` on ``n_threads`` barrier-released threads.

    Re-raises the first worker exception; returns the per-thread results.
    """
    barrier = threading.Barrier(n_threads)
    results: list = [None] * n_threads
    errors: list = []

    def run(index: int) -> None:
        barrier.wait()
        try:
            results[index] = work(index)
        except BaseException as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [
        threading.Thread(target=run, args=(i,), daemon=True)
        for i in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    alive = [t for t in threads if t.is_alive()]
    assert not alive, f"{len(alive)} stress threads hung"
    if errors:
        raise errors[0]
    return results


def overlapping_values(_thread_index: int) -> list[str]:
    """Every thread interns the same value set, in the same order.

    Same-order walks keep all threads contending on the *same fresh
    value* at any moment — the adversarial schedule for a get-or-assign
    race (rotated or shuffled walks mostly intern disjoint values at any
    instant and hide it).
    """
    return [f"value-{i}" for i in range(N_VALUES)]


def lockstep(sync: threading.Barrier, position: int) -> None:
    """Re-align the walkers every ``RESYNC_EVERY`` interns.

    Without this the threads drift apart after a few hundred interns and
    stop probing the same fresh values; the 30 s timeout breaks the
    barrier (instead of hanging the suite) if a sibling thread dies.
    """
    if position % RESYNC_EVERY == 0:
        sync.wait(30)


def assert_bijective(code_of: dict, values: list, witnessed: list[dict]) -> None:
    """The shared-table contract every stress test checks."""
    assert len(values) == len(code_of), (
        f"table corrupted: {len(values)} appended values but "
        f"{len(code_of)} codes — a race double-appended"
    )
    for value, code in code_of.items():
        assert values[code] == value, (
            f"code {code} maps to {values[code]!r}, assigned for {value!r}"
        )
    for per_thread in witnessed:
        for value, code in per_thread.items():
            assert code_of[value] == code, (
                f"a thread shipped code {code} for {value!r} but the table "
                f"settled on {code_of[value]} — two codes for one value"
            )


def test_shared_column_intern_is_bijective_under_threads():
    for _ in range(ROUNDS):
        column = SharedColumn("CC")
        sync = threading.Barrier(N_THREADS)

        def work(index: int) -> dict:
            intern = column.intern
            witnessed = {}
            for position, value in enumerate(overlapping_values(index)):
                lockstep(sync, position)
                witnessed[value] = intern(value)
            return witnessed

        witnessed = hammer(N_THREADS, work)
        assert_bijective(column.code_of, column.values, witnessed)
        assert column.n_distinct == N_VALUES


def test_pair_dictionary_intern_x_y_is_bijective_under_threads():
    for _ in range(ROUNDS):
        shared = SharedPairDictionary(lhs_width=2)
        sync = threading.Barrier(N_THREADS)

        def work(index: int) -> tuple[dict, dict]:
            xs, ys = {}, {}
            for position, value in enumerate(overlapping_values(index)):
                lockstep(sync, position)
                x = (value, "x")
                y = (value,)
                xs[x] = shared.intern_x(x)
                ys[y] = shared.intern_y(y)
            return xs, ys

        results = hammer(N_THREADS, work)
        assert_bijective(
            shared.x_code_of, shared.x_values, [xs for xs, _ in results]
        )
        assert_bijective(
            shared.y_code_of, shared.y_values, [ys for _, ys in results]
        )


def test_combo_dictionary_intern_is_bijective_under_threads():
    for _ in range(ROUNDS):
        shared = SharedComboDictionary()
        sync = threading.Barrier(N_THREADS)

        def work(index: int) -> dict:
            intern = shared.intern
            witnessed = {}
            for position, value in enumerate(overlapping_values(index)):
                lockstep(sync, position)
                witnessed[(value, "combo")] = intern((value, "combo"))
            return witnessed

        witnessed = hammer(N_THREADS, work)
        assert_bijective(shared.code_of, shared.values, witnessed)


def test_translate_concurrent_with_interning_stays_consistent():
    """Site translations racing per-combination interning (the service's
    initial-run-vs-update overlap) must agree on every code."""
    for _ in range(ROUNDS):
        shared = SharedPairDictionary(lhs_width=1)
        combos = [((f"x{i % 500}",) + (f"y{i % 37}",)) for i in range(1500)]

        def work(index: int):
            if index % 2:
                # half the threads translate whole fragments...
                return ("pairs", shared.translate(index, combos))
            # ...the other half intern single delta combinations
            out = {}
            for combo in combos:
                out[combo] = (
                    shared.intern_x(combo[:1]),
                    shared.intern_y(combo[1:]),
                )
            return ("interned", out)

        results = hammer(N_THREADS, work)
        assert len(shared.x_values) == len(shared.x_code_of)
        assert len(shared.y_values) == len(shared.y_code_of)
        for kind, payload in results:
            if kind == "pairs":
                for combo, (x_code, y_code) in zip(combos, payload):
                    assert shared.x_values[x_code] == combo[:1]
                    assert shared.y_values[y_code] == combo[1:]
            else:
                for combo, (x_code, y_code) in payload.items():
                    assert shared.x_code_of[combo[:1]] == x_code
                    assert shared.y_code_of[combo[1:]] == y_code


def test_shared_dictionary_store_and_columns_race_free():
    """Concurrent ``column()`` probes must converge on one table object."""
    for _ in range(ROUNDS):
        dictionary = SharedDictionary()
        attributes = [f"attr{i}" for i in range(32)]

        def work(index: int):
            return [dictionary.column(a) for a in attributes]

        results = hammer(N_THREADS, work)
        first = results[0]
        for tables in results[1:]:
            for a, b in zip(first, tables):
                assert a is b, (
                    "two threads created distinct shared tables for one "
                    "attribute — interned codes would split across them"
                )


class _Owner:
    """A plain (dict-carrying, weakref-able) cluster stand-in."""


def test_shared_dict_on_cache_creation_is_atomic():
    """All threads asking one owner for one key must get one dictionary."""
    for _ in range(ROUNDS):
        owner = _Owner()

        def work(index: int):
            return shared_dict_on(
                owner, ("pairs", "cfd1"), lambda: SharedPairDictionary(1)
            )

        results = hammer(N_THREADS, work)
        assert all(shared is results[0] for shared in results), (
            "shared_dict_on built more than one dictionary for the same "
            "cluster key — the cluster's value↔code space split"
        )


def test_shared_dict_on_many_keys_under_threads():
    """Each distinct key settles on exactly one dictionary, concurrently."""
    owner = _Owner()
    keys = [("pairs", f"cfd{i}") for i in range(64)]

    def work(index: int):
        return {
            key: shared_dict_on(owner, key, SharedComboDictionary)
            for key in keys
        }

    results = hammer(N_THREADS, work)
    for key in keys:
        first = results[0][key]
        assert all(per_thread[key] is first for per_thread in results)
