"""Tests for detection under hybrid fragmentation (Section VIII extension)."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core import detect_violations, parse_cfd
from repro.datagen import (
    emp_horizontal_predicates,
    emp_instance,
    emp_tableau_cfds,
    emp_vertical_attribute_sets,
)
from repro.distributed import HybridCluster
from repro.detect import hybrid_detect
from repro.relational import Eq, Relation, Schema

# every test in this module runs once per detection engine (see conftest)
pytestmark = pytest.mark.usefixtures("detection_engine")

S = Schema("R", ["id", "a", "b", "c", "d"], key=["id"])


def make_hybrid(rows, n_kinds=2):
    relation = Relation(S, rows)
    predicates = {
        f"H{k}": Eq("a", k) for k in range(n_kinds)
    }
    attribute_sets = {"V1": ["a", "b"], "V2": ["c"], "V3": ["d"]}
    return relation, HybridCluster.from_partitions(
        relation, predicates, attribute_sets
    )


def rows_over(n, n_kinds=2):
    return [
        (i, i % n_kinds, i % 3, f"c{i % 4}", f"d{(i * 7) % 5}")
        for i in range(n)
    ]


# -- construction -----------------------------------------------------------


def test_hybrid_structure_and_site_ids():
    _rel, cluster = make_hybrid(rows_over(10))
    assert len(cluster.regions) == 2
    assert cluster.n_sites == 6  # 2 regions x 3 vertical fragments
    ids = {
        cluster.site_id(r, f)
        for r in range(2)
        for f in range(3)
    }
    assert ids == set(range(6))


def test_hybrid_reconstruct():
    relation, cluster = make_hybrid(rows_over(12))
    assert cluster.reconstruct() == relation
    assert cluster.total_tuples() == 12


def test_hybrid_requires_covering_predicates():
    relation = Relation(S, rows_over(6, n_kinds=3))
    with pytest.raises(Exception):
        HybridCluster.from_partitions(
            relation,
            {"only0": Eq("a", 0)},
            {"V1": ["a", "b", "c", "d"]},
        )


# -- detection ----------------------------------------------------------------


def test_hybrid_detect_on_emp_matches_centralized():
    d0 = emp_instance()
    cluster = HybridCluster.from_partitions(
        d0, emp_horizontal_predicates(), emp_vertical_attribute_sets()
    )
    phis = emp_tableau_cfds()
    expected = detect_violations(d0, phis, collect_tuples=False).violations
    outcome = hybrid_detect(cluster, phis)
    assert outcome.report.violations == expected
    assert outcome.tuples_shipped > 0  # gathers are unavoidable here


def test_hybrid_detect_no_gather_when_fragment_covers():
    relation, cluster = make_hybrid(rows_over(10))
    cfd = parse_cfd("([a] -> [b])", name="ab")  # V1 covers {a, b}
    outcome = hybrid_detect(cluster, cfd)
    expected = detect_violations(relation, cfd, collect_tuples=False)
    assert outcome.report.violations == expected.violations
    # no intra-region (vertical) shipments: only cross-region pattern traffic
    intra = [
        e for e in outcome.shipments.events if "@" in e.tag
    ]
    assert not intra


def test_hybrid_detect_constant_cfd():
    relation, cluster = make_hybrid(rows_over(10))
    cfd = parse_cfd("([a=0] -> [d='d0'])", name="const")
    expected = detect_violations(relation, cfd, collect_tuples=False)
    outcome = hybrid_detect(cluster, cfd)
    assert outcome.report.violations == expected.violations


def test_hybrid_detect_region_pruning():
    relation, cluster = make_hybrid(rows_over(10))
    # patterns only bind a=0: region H1 (a=1) is never gathered
    cfd = parse_cfd("([a, b] -> [c]) with (0, _ || _)", name="pruned")
    outcome = hybrid_detect(cluster, cfd)
    expected = detect_violations(relation, cfd, collect_tuples=False)
    assert outcome.report.violations == expected.violations
    h1_sites = {cluster.site_id(1, f) for f in range(3)}
    for event in outcome.shipments.events:
        assert event.src not in h1_sites


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 1),
            st.integers(0, 2),
            st.sampled_from(["c0", "c1"]),
            st.sampled_from(["d0", "d1", "d2"]),
        ),
        min_size=0,
        max_size=20,
    ),
    st.sampled_from(
        [
            "([a, b] -> [c])",
            "([b] -> [d])",
            "([a, c] -> [d]) with (0, 'c0' || _), (_, _ || _)",
            "([b=1] -> [c='c0'])",
            "([c] -> [b])",
        ]
    ),
)
def test_hybrid_detect_matches_centralized_random(body, text):
    rows = [(i,) + r for i, r in enumerate(body)]
    relation, cluster = make_hybrid(rows)
    cfd = parse_cfd(text, name="t")
    expected = detect_violations(relation, cfd, collect_tuples=False)
    for strategy in ("s", "rt"):
        outcome = hybrid_detect(cluster, cfd, strategy=strategy)
        assert outcome.report.violations == expected.violations


def test_hybrid_rejects_unknown_strategy():
    _relation, cluster = make_hybrid(rows_over(4))
    with pytest.raises(ValueError):
        hybrid_detect(cluster, parse_cfd("([a] -> [b])"), strategy="bogus")
