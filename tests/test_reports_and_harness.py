"""Unit tests for violation reports, outcomes and the experiment harness."""

import pytest

from repro.core import Violation, ViolationReport
from repro.distributed import (
    CostBreakdown,
    DetectionOutcome,
    ShipmentLog,
    StageTimes,
)
from repro.experiments import ExperimentResult, scale, scaled, sweep


def v(cfd, *values):
    return Violation(cfd=cfd, lhs_attributes=("a",), lhs_values=tuple(values))


# -- ViolationReport -----------------------------------------------------------


def test_report_set_semantics():
    report = ViolationReport()
    report.add(v("r1", 1))
    report.add(v("r1", 1))  # duplicate
    report.add(v("r2", 2))
    assert len(report) == 2
    assert report.cfd_names() == {"r1", "r2"}
    assert report.for_cfd("r1") == {v("r1", 1)}


def test_report_merge_and_union():
    a = ViolationReport([v("r", 1)], tuple_keys=[(1,)])
    b = ViolationReport([v("r", 2)], tuple_keys=[(2,)])
    merged = ViolationReport.union([a, b])
    assert len(merged) == 2
    assert merged.tuple_keys == {(1,), (2,)}


def test_report_equality_ignores_tuple_keys():
    a = ViolationReport([v("r", 1)], tuple_keys=[(1,)])
    b = ViolationReport([v("r", 1)], tuple_keys=[(9,)])
    assert a == b


def test_report_truthiness_and_clean():
    assert not ViolationReport()
    assert ViolationReport().is_clean()
    assert ViolationReport([v("r", 1)])


def test_report_summary_sorted():
    report = ViolationReport([v("b", 1), v("a", 1), v("a", 2)])
    lines = report.summary().splitlines()
    assert lines[0].startswith("a: 2")
    assert lines[1].startswith("b: 1")


def test_violation_repr_mentions_binding():
    assert "a=1" in repr(v("r", 1))


# -- DetectionOutcome -------------------------------------------------------------


def test_outcome_properties():
    log = ShipmentLog()
    log.ship(0, 1, 7, 14)
    outcome = DetectionOutcome(
        algorithm="X",
        report=ViolationReport([v("r", 1)]),
        shipments=log,
        cost=CostBreakdown(stages=[StageTimes(1.0, 2.0, 3.0)]),
    )
    assert outcome.tuples_shipped == 7
    assert outcome.response_time == pytest.approx(6.0)
    assert "X" in repr(outcome)


# -- experiment harness ----------------------------------------------------------


def test_scaled_respects_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.5")
    assert scale() == 0.5
    assert scaled(1000) == 500
    assert scaled(10) == 100  # floor of 100 tuples


def test_scale_rejects_nonpositive(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0")
    with pytest.raises(ValueError):
        scale()


def test_sweep_collects_series():
    result = ExperimentResult("t", "title", "x", "y")
    sweep(result, [1, 2, 3], lambda x: {"s1": float(x), "s2": float(x * x)})
    assert result.xs == [1, 2, 3]
    assert result.series_by_label("s2") == [1.0, 4.0, 9.0]
    with pytest.raises(KeyError):
        result.series_by_label("nope")


def test_table_renders_all_series():
    result = ExperimentResult("t", "title", "x", "y")
    result.add_point(1, {"alpha": 0.5})
    result.add_point(2, {"alpha": 1.5})
    table = result.table()
    assert "alpha" in table and "0.500" in table and "1.500" in table
    assert "t: title" in table


def test_save_writes_file(tmp_path):
    result = ExperimentResult("myexp", "title", "x", "y")
    result.add_point(1, {"s": 2.0})
    path = result.save(tmp_path)
    assert path.name == "myexp.txt"
    assert "myexp" in path.read_text()
