"""Tests for the eCFD extension: disjunctions, negations, ranges ([17]).

Semantics oracle: a brute-force evaluator built directly on the definition
(for each pattern and pair of tuples, check the extended ≍).  Every layer —
matching, normal forms, centralized detection, the generated SQL on
sqlite3, and the distributed algorithms — must agree with it.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core import (
    CFD,
    NotValue,
    OneOf,
    PatternTuple,
    Range,
    WILDCARD,
    detect_violations,
    format_cfd,
    implies,
    is_predicate,
    matches,
    parse_cfd,
    satisfies,
)
from repro.core.sql import run_detection_on_sqlite
from repro.detect import clust_detect, ctr_detect, pat_detect_rt, pat_detect_s
from repro.partition import partition_uniform
from repro.relational import Relation, Schema

# every test in this module runs once per detection engine (see conftest)
pytestmark = pytest.mark.usefixtures("detection_engine")

ATTRS = ("a", "b", "c")
SCHEMA = Schema("R", ("id",) + ATTRS, key=("id",))


def brute_force_vio_pi(relation, cfd):
    """Direct implementation of Vioπ from Section II-C, extended ≍."""
    lhs_pos = relation.schema.positions(cfd.lhs)
    rhs_pos = relation.schema.positions(cfd.rhs)
    violating = set()
    for tp in cfd.tableau:
        for t in relation.rows:
            tx = tuple(t[p] for p in lhs_pos)
            ty = tuple(t[p] for p in rhs_pos)
            if not tp.matches_lhs(tx):
                continue
            for other in relation.rows:
                ox = tuple(other[p] for p in lhs_pos)
                oy = tuple(other[p] for p in rhs_pos)
                if tx != ox or not tp.matches_lhs(ox):
                    continue
                if ty != oy or not tp.matches_rhs(ty):
                    violating.add(tx)
    return violating


# -- entry semantics -----------------------------------------------------------


def test_oneof_matches():
    entry = OneOf([1, 2])
    assert matches(1, entry) and matches(2, entry)
    assert not matches(3, entry)


def test_notvalue_matches():
    entry = NotValue("x")
    assert matches("y", entry)
    assert not matches("x", entry)


def test_range_matches():
    assert matches(5, Range("<", 10))
    assert not matches(10, Range("<", 10))
    assert matches(10, Range("<=", 10))
    assert matches(11, Range(">", 10))
    assert matches(10, Range(">=", 10))
    assert not matches("str", Range("<", 10))  # incomparable never matches


def test_oneof_requires_values():
    with pytest.raises(ValueError):
        OneOf([])


def test_range_validates_operator():
    with pytest.raises(ValueError):
        Range("==", 5)


def test_is_predicate():
    assert is_predicate(OneOf([1]))
    assert is_predicate(NotValue(1))
    assert is_predicate(Range("<", 1))
    assert not is_predicate(1)
    assert not is_predicate(WILDCARD)


# -- parser --------------------------------------------------------------------


def test_parse_inline_operators():
    cfd = parse_cfd("([a != 1, b >= 10, c] -> [c])")
    entries = cfd.tableau[0].lhs
    assert entries[0] == NotValue(1)
    assert entries[1] == Range(">=", 10)
    assert entries[2] is WILDCARD


def test_parse_disjunction():
    cfd = parse_cfd("([a = {44|31}] -> [b])")
    assert cfd.tableau[0].lhs == (OneOf([44, 31]),)


def test_parse_tableau_predicates():
    cfd = parse_cfd("([a, b] -> [c]) with (!5, {1|2} || <10)")
    tp = cfd.tableau[0]
    assert tp.lhs == (NotValue(5), OneOf([1, 2]))
    assert tp.rhs == (Range("<", 10),)


def test_parse_empty_disjunction_rejected():
    from repro.core import CFDError

    with pytest.raises(CFDError):
        parse_cfd("([a = {}] -> [b])")


def test_format_roundtrip_with_predicates():
    cfd = parse_cfd(
        "([a, b] -> [c]) with (!5, {1|2} || _), (>=10, _ || 'k')"
    )
    assert parse_cfd(format_cfd(cfd)) == cfd


# -- satisfaction and detection --------------------------------------------------


def rel(rows):
    return Relation(SCHEMA, [(i,) + tuple(r) for i, r in enumerate(rows)])


def test_satisfies_with_range_condition():
    cfd = parse_cfd("([a >= 10, b] -> [c])")
    assert satisfies(rel([(10, 1, "x"), (10, 1, "x"), (5, 1, "y")]), cfd)
    assert not satisfies(rel([(10, 1, "x"), (11, 1, "x"), (10, 1, "y")]), cfd)


def test_constant_rhs_with_disjunction():
    # quantity of express orders must be one of {1, 2}
    cfd = parse_cfd("([a = 'express'] -> [b = {1|2}])", name="q")
    report = detect_violations(
        rel([("express", 1, "_"), ("express", 5, "_"), ("bulk", 9, "_")]), cfd
    )
    assert {v.lhs_values for v in report.violations} == {("express",)}


def test_negation_lhs():
    cfd = parse_cfd("([a != 0] -> [b])", name="n")
    report = detect_violations(
        rel([(1, "x", "_"), (1, "y", "_"), (0, "x", "_"), (0, "z", "_")]), cfd
    )
    assert {v.lhs_values for v in report.violations} == {(1,)}


# -- oracle agreement, all layers -------------------------------------------------

entry_values = st.sampled_from([0, 1, 2])


@st.composite
def extended_entries(draw):
    kind = draw(st.integers(0, 4))
    if kind == 0:
        return WILDCARD
    if kind == 1:
        return draw(entry_values)
    if kind == 2:
        return NotValue(draw(entry_values))
    if kind == 3:
        values = draw(st.sets(entry_values, min_size=1, max_size=2))
        return OneOf(values)
    return Range(draw(st.sampled_from(["<", "<=", ">", ">="])), draw(entry_values))


@st.composite
def extended_cases(draw):
    rows = draw(
        st.lists(
            st.tuples(*[entry_values for _ in ATTRS]),
            min_size=0,
            max_size=14,
        )
    )
    relation = rel(rows)
    lhs_size = draw(st.integers(1, 2))
    attrs = draw(st.permutations(ATTRS).map(lambda p: list(p[: lhs_size + 1])))
    lhs, rhs = attrs[:-1], [attrs[-1]]
    tableau = [
        PatternTuple(
            [draw(extended_entries()) for _ in lhs],
            [draw(extended_entries()) for _ in rhs],
        )
        for _ in range(draw(st.integers(1, 2)))
    ]
    return relation, CFD(lhs, rhs, tableau, name="e")


@settings(max_examples=80, deadline=None)
@given(extended_cases())
def test_detector_matches_bruteforce_semantics(case):
    relation, cfd = case
    expected = brute_force_vio_pi(relation, cfd)
    report = detect_violations(relation, cfd, collect_tuples=False)
    assert {v.lhs_values for v in report.violations} == expected


@settings(max_examples=60, deadline=None)
@given(extended_cases())
def test_sqlite_matches_detector_extended(case):
    relation, cfd = case
    report = detect_violations(relation, cfd, collect_tuples=False)
    expected = {(v.cfd, v.lhs_values) for v in report.violations}
    assert run_detection_on_sqlite(relation, cfd) == expected


@settings(max_examples=60, deadline=None)
@given(extended_cases(), st.integers(1, 3))
def test_distributed_algorithms_handle_extended_patterns(case, n_sites):
    relation, cfd = case
    cluster = partition_uniform(relation, n_sites)
    expected = detect_violations(relation, cfd, collect_tuples=False).violations
    assert ctr_detect(cluster, cfd).report.violations == expected
    assert pat_detect_s(cluster, cfd).report.violations == expected
    assert pat_detect_rt(cluster, cfd).report.violations == expected
    assert clust_detect(cluster, [cfd]).report.violations == expected


# -- implication guard --------------------------------------------------------------


def test_implication_rejects_extended_entries():
    phi = parse_cfd("([a != 1] -> [b])")
    fd = parse_cfd("([a] -> [b])")
    with pytest.raises(NotImplementedError):
        implies([fd], phi)
    with pytest.raises(NotImplementedError):
        implies([phi], fd)
