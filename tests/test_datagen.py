"""Tests for the CUST and XREF workload generators."""

import pytest

from repro.core import detect_violations, normalize, satisfies
from repro.datagen import (
    ORGANISMS_XREFH,
    all_cc_ac_pairs,
    corrupt_attribute,
    cust_city_cfd,
    cust_overlapping_cfds,
    cust_street_cfd,
    generate_cust,
    generate_xref,
    n_info_types,
    swap_with,
    typo,
    xref_mining_fd,
    xref_object_type_cfd,
    xref_overlapping_cfds,
    xref_priority_cfd,
)
from repro.partition import partition_by_attribute
from repro.relational import Relation, Schema


# -- CUST ----------------------------------------------------------------


def test_cust_shape_and_determinism():
    a = generate_cust(500, seed=3)
    b = generate_cust(500, seed=3)
    c = generate_cust(500, seed=4)
    assert len(a) == 500
    assert len(a.schema) == 11
    assert a.rows == b.rows
    assert a.rows != c.rows


def test_cust_keys_unique():
    relation = generate_cust(300)
    ids = [row[0] for row in relation.rows]
    assert len(set(ids)) == len(ids)


def test_cust_clean_data_satisfies_cfds():
    relation = generate_cust(2000, error_rate=0.0)
    assert satisfies(relation, cust_street_cfd(255))
    assert satisfies(relation, cust_city_cfd(26))


def test_cust_errors_create_violations():
    relation = generate_cust(2000, error_rate=0.05)
    report = detect_violations(relation, cust_street_cfd(255))
    assert report  # injected street errors are caught


def test_cust_cfd_shapes_match_paper():
    street = cust_street_cfd(255)
    assert len(street.attributes) == 4  # "four attributes and 255 patterns"
    assert len(street.tableau) == 255
    city = cust_city_cfd(26)
    assert len(city.attributes) == 3
    assert len(city.tableau) == 26


def test_cust_overlap_condition_for_clustdetect():
    street, city = cust_overlapping_cfds()
    assert set(city.lhs) <= set(street.lhs)


def test_cust_pattern_count_bounds():
    with pytest.raises(ValueError):
        cust_street_cfd(0)
    with pytest.raises(ValueError):
        cust_street_cfd(len(all_cc_ac_pairs()) + 1)


def test_cust_patterns_are_variable():
    normalized = normalize(cust_street_cfd(100))
    assert not normalized.constants
    assert len(normalized.variables[0].patterns) == 100


# -- XREF ----------------------------------------------------------------


def test_xref_shape():
    relation = generate_xref(400)
    assert len(relation) == 400
    assert len(relation.schema) == 16  # the paper's 16-attribute schema


def test_xref_determinism():
    assert generate_xref(200, seed=1).rows == generate_xref(200, seed=1).rows


def test_xref_clean_data_satisfies_cfds():
    relation = generate_xref(2000, error_rate=0.0)
    assert satisfies(relation, xref_priority_cfd())
    assert satisfies(relation, xref_object_type_cfd())


def test_xref_errors_create_violations():
    relation = generate_xref(3000, error_rate=0.05)
    assert detect_violations(relation, xref_priority_cfd())


def test_xref_cfd_shapes_match_paper():
    # "four CFDs for XREF with 3-5 attributes, tableau sizes 11..67";
    # the representative one: 5 attributes, 11 patterns.
    priority = xref_priority_cfd()
    assert len(priority.attributes) == 5
    assert len(priority.tableau) == 11
    # the second CFD of Exp-5: 3 attributes, 26 patterns, LHS ⊆ first's.
    second = xref_object_type_cfd()
    assert len(second.attributes) == 3
    assert len(second.tableau) == 26
    assert set(second.lhs) <= set(priority.lhs)


def test_xref_overlapping_pair():
    a, b = xref_overlapping_cfds()
    assert set(b.lhs) <= set(a.lhs)


def test_xrefh_fragmentation_by_reference_type():
    """xrefH: human data distributed into 7 fragments by reference type."""
    relation = generate_xref(2000, organisms=ORGANISMS_XREFH)
    cluster = partition_by_attribute(relation, "info_type")
    assert cluster.n_sites == n_info_types() == 7
    assert cluster.total_tuples() == 2000


def test_xref_mining_fd_is_fd():
    assert xref_mining_fd().is_fd()


def test_xref_db_name_skew():
    """Zipf-ish skew: the most frequent db dominates (drives Exp-4)."""
    relation = generate_xref(5000)
    counts = {}
    pos = relation.schema.position("db_name")
    for row in relation.rows:
        counts[row[pos]] = counts.get(row[pos], 0) + 1
    ordered = sorted(counts.values(), reverse=True)
    assert ordered[0] > 3 * ordered[-1]


# -- error injection helpers ----------------------------------------------


def test_corrupt_attribute_rate_zero_is_identity():
    relation = generate_cust(100)
    corrupted, touched = corrupt_attribute(relation, "city", 0.0, typo)
    assert corrupted.rows == relation.rows
    assert touched == []


def test_corrupt_attribute_touches_reported_rows():
    schema = Schema("R", ["id", "v"], key=["id"])
    relation = Relation(schema, [(i, "x") for i in range(50)])
    corrupted, touched = corrupt_attribute(relation, "v", 0.5, typo, seed=1)
    assert touched
    for index in touched:
        assert corrupted.rows[index][1] != "x"
    untouched = set(range(50)) - set(touched)
    for index in untouched:
        assert corrupted.rows[index][1] == "x"


def test_corrupt_attribute_validates_rate():
    relation = generate_cust(10)
    with pytest.raises(ValueError):
        corrupt_attribute(relation, "city", 1.5, typo)


def test_swap_with_changes_value():
    import random

    corrupter = swap_with(["a", "b", "c"])
    rng = random.Random(0)
    assert corrupter("a", rng) in {"b", "c"}
