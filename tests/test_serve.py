"""The resident multi-tenant detection service (`repro.serve`).

Covers the service layer (managed sessions: group commit, backpressure,
LRU retire/restore, the single-writer regression the per-session locks
fix) and the HTTP front end (threaded end-to-end with concurrent
clients, equivalence-gated against a serial replay).
"""

from __future__ import annotations

import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.core import detect_violations, parse_cfd
from repro.core.incremental import incremental_detect
from repro.relational import Relation
from repro.relational.schema import Schema
from repro.serve import (
    Backpressure,
    BadSessionSpec,
    DetectionService,
    DuplicateSession,
    UnknownSession,
    resolve_timeout,
    serve_http,
)

CFD = "([CC=44, zip] -> [street])"
SCHEMA = {
    "name": "cust",
    "attributes": ["id", "CC", "zip", "street"],
    "key": ["id"],
}


def base_rows(n: int = 60) -> list[list]:
    """Rows with planted σ-matched conflicts (CC=44 groups of varied zip)."""
    rows = []
    for i in range(n):
        zip_code = f"Z{i % 7}"
        street = f"S{i % 3}" if i % 5 else "CONFLICT"
        rows.append([i, 44 if i % 2 else 99, zip_code, street])
    return rows


def spec(rows, kind="central", sites=3, cfds=(CFD,)) -> dict:
    built = {"kind": kind, "schema": SCHEMA, "cfds": list(cfds), "rows": rows}
    if kind != "central":
        built["sites"] = sites
    return built


def oracle(rows) -> set:
    """The one-shot violation set over ``rows`` (the serial oracle)."""
    relation = Relation(
        Schema(SCHEMA["name"], SCHEMA["attributes"], SCHEMA["key"]),
        [tuple(row) for row in rows],
    )
    return set(detect_violations(relation, parse_cfd(CFD)).violations)


def served_violations(service, tenant, name) -> set:
    return {
        (v["cfd"], tuple(v["lhs_attributes"]), tuple(v["lhs_values"]))
        for v in service.detect(tenant, name)["violations"]
    }


def as_comparable(violations) -> set:
    return {
        (v.cfd, tuple(v.lhs_attributes), tuple(v.lhs_values))
        for v in violations
    }


# -- service layer ------------------------------------------------------------


def test_create_detect_matches_one_shot_detection():
    service = DetectionService()
    rows = base_rows()
    created = service.create_session("t", "s", spec(rows))
    assert created["n_violations"] == len(oracle(rows))
    assert served_violations(service, "t", "s") == as_comparable(oracle(rows))
    assert service.verify("t", "s")["ok"]


@pytest.mark.parametrize("kind", ["ctr", "pat-s", "pat-rt", "clust"])
def test_distributed_kinds_maintain_violations(kind):
    service = DetectionService()
    rows = base_rows()
    service.create_session("t", kind, spec(rows, kind=kind))
    service.update(
        "t", kind, inserted=[[200, 44, "Z1", "NEW-A"], [201, 44, "Z1", "NEW-B"]],
        site=1,
    )
    final = rows + [[200, 44, "Z1", "NEW-A"], [201, 44, "Z1", "NEW-B"]]
    assert served_violations(service, "t", kind) == as_comparable(oracle(final))
    assert service.verify("t", kind)["ok"]


def test_update_delete_roundtrip_and_verify():
    service = DetectionService()
    rows = base_rows()
    service.create_session("t", "s", spec(rows))
    service.update("t", "s", inserted=[[300, 44, "Z0", "X"], [301, 44, "Z0", "Y"]])
    service.update("t", "s", deleted=[300])
    final = rows + [[301, 44, "Z0", "Y"]]
    assert served_violations(service, "t", "s") == as_comparable(oracle(final))
    assert service.verify("t", "s")["ok"]


def test_bad_specs_and_unknown_sessions_are_typed():
    service = DetectionService()
    with pytest.raises(BadSessionSpec):
        service.create_session("t", "s", {"cfds": [CFD]})  # no schema
    with pytest.raises(BadSessionSpec):
        service.create_session("t", "s", spec([], kind="nope"))
    with pytest.raises(BadSessionSpec):
        # horizontal kinds host exactly one CFD
        service.create_session(
            "t", "s", spec([], kind="pat-s", cfds=[CFD, "([CC] -> [zip])"])
        )
    with pytest.raises(UnknownSession):
        service.detect("t", "missing")
    service.create_session("t", "s", spec(base_rows()))
    with pytest.raises(DuplicateSession):
        service.create_session("t", "s", spec(base_rows()))


def test_concurrent_writers_coalesce_and_match_serial_replay():
    """N writers over disjoint key ranges: the final report must equal
    the serial oracle, and group commit must actually group."""
    service = DetectionService(coalesce=8)
    rows = base_rows()
    service.create_session("t", "s", spec(rows))
    n_writers, per_writer = 4, 12
    barrier = threading.Barrier(n_writers)
    errors: list = []

    def writer(index: int) -> None:
        barrier.wait()
        try:
            for step in range(per_writer):
                key = 1000 + index * per_writer + step
                service.update(
                    "t",
                    "s",
                    inserted=[[key, 44, f"Z{index}", f"W{index}-{step}"]],
                )
        except BaseException as error:  # noqa: BLE001
            errors.append(error)

    threads = [
        threading.Thread(target=writer, args=(i,)) for i in range(n_writers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not errors, errors
    final = rows + [
        [1000 + i * per_writer + s, 44, f"Z{i}", f"W{i}-{s}"]
        for i in range(n_writers)
        for s in range(per_writer)
    ]
    assert served_violations(service, "t", "s") == as_comparable(oracle(final))
    assert service.verify("t", "s")["ok"]
    stats = service.stats()["sessions"]["t/s"]
    assert stats["updates"] == n_writers * per_writer
    # group commit must have folded at least one multi-ticket batch, and
    # strictly fewer folds than updates (otherwise coalescing is off)
    assert stats["folds"] < stats["updates"]
    assert stats["coalesced_max"] >= 2


def test_interleaved_update_and_verify_is_safe():
    """Satellite regression: concurrent update()/verify() on one session
    must serialize on the per-session lock — verify must never observe a
    half-folded batch (it recomputes from the same store the fold
    mutates)."""
    rows = base_rows(40)
    relation = Relation(
        Schema(SCHEMA["name"], SCHEMA["attributes"], SCHEMA["key"]),
        [tuple(row) for row in rows],
    )
    detector = incremental_detect(relation, parse_cfd(CFD))
    stop = threading.Event()
    failures: list = []

    def verifier() -> None:
        while not stop.is_set():
            try:
                if not detector.verify():
                    failures.append("verify() saw inconsistent state")
                    return
            except BaseException as error:  # noqa: BLE001
                failures.append(error)
                return

    thread = threading.Thread(target=verifier)
    thread.start()
    try:
        for step in range(30):
            detector.update(
                inserted=[(500 + step, 44, "Z9", f"V{step}")],
                deleted=[500 + step - 5] if step >= 5 else (),
            )
    finally:
        stop.set()
        thread.join(timeout=60)
    assert not failures, failures
    assert detector.verify()


def test_backpressure_when_queue_is_full():
    service = DetectionService(queue_depth=1)
    service.create_session("t", "s", spec(base_rows(10)))
    session = service.registry.get("t", "s")
    # hold the fold lock so enqueued tickets cannot drain
    with session._lock:
        blocked = threading.Thread(
            target=lambda: service.update(
                "t", "s", inserted=[[900, 44, "Z0", "A"]]
            )
        )
        blocked.start()
        for _ in range(2000):
            if session._pending:
                break
            threading.Event().wait(0.001)
        assert session._pending, "first update never enqueued"
        with pytest.raises(Backpressure) as caught:
            service.update("t", "s", inserted=[[901, 44, "Z0", "B"]])
        assert caught.value.retry_after > 0
    blocked.join(timeout=60)
    assert not blocked.is_alive()
    assert served_violations(service, "t", "s") == as_comparable(
        oracle(base_rows(10) + [[900, 44, "Z0", "A"]])
    )


def test_lru_eviction_restores_equivalent_session():
    service = DetectionService(max_sessions=1)
    rows = base_rows()
    service.create_session("t", "a", spec(rows))
    service.update("t", "a", inserted=[[700, 44, "Z2", "EV-A"], [701, 44, "Z2", "EV-B"]])
    before = served_violations(service, "t", "a")
    # creating b evicts a (retire -> parked snapshot)
    service.create_session("t", "b", spec(base_rows(10)))
    stats = service.stats()
    assert stats["evicted"] == 1 and stats["parked"] == 1
    # touching a restores it transparently, with identical state
    assert served_violations(service, "t", "a") == before
    assert service.verify("t", "a")["ok"]
    assert service.stats()["restored"] == 1
    # and updates keep folding incrementally after the restore
    service.update("t", "a", deleted=[700])
    final = rows + [[701, 44, "Z2", "EV-B"]]
    assert served_violations(service, "t", "a") == as_comparable(oracle(final))


def test_snapshot_reports_session_state():
    service = DetectionService()
    rows = base_rows(20)
    service.create_session("t", "s", spec(rows, kind="pat-s", sites=3))
    snapshot = service.snapshot("t", "s")
    assert snapshot["n_rows"] == len(rows)
    assert len(snapshot["fragments"]) == 3
    assert snapshot["spec"]["cfds"] == [CFD]
    assert json.loads(json.dumps(snapshot)) == snapshot  # JSON-able


# -- HTTP front end -----------------------------------------------------------


@pytest.fixture()
def server():
    instance = serve_http(DetectionService())
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = instance.server_address
        yield f"http://{host}:{port}"
    finally:
        instance.shutdown()
        instance.server_close()


def request(base: str, method: str, path: str, body=None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(base + path, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def test_http_end_to_end_with_concurrent_clients(server):
    status, payload = request(server, "GET", "/healthz")
    assert status == 200 and payload["ok"] is True

    rows = base_rows()
    status, created = request(
        server, "POST", "/v1/acme/sessions/cust", spec(rows)
    )
    assert status == 201 and created["kind"] == "central"

    n_clients, per_client = 3, 8
    barrier = threading.Barrier(n_clients)
    outcomes: list = []

    def client(index: int) -> None:
        barrier.wait()
        for step in range(per_client):
            key = 2000 + index * per_client + step
            status, body = request(
                server,
                "POST",
                "/v1/acme/sessions/cust/update",
                {"inserted": [[key, 44, f"C{index}", f"H{index}-{step}"]]},
            )
            outcomes.append((status, body.get("coalesced")))

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(n_clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert len(outcomes) == n_clients * per_client
    assert all(status == 200 for status, _ in outcomes)

    final = rows + [
        [2000 + i * per_client + s, 44, f"C{i}", f"H{i}-{s}"]
        for i in range(n_clients)
        for s in range(per_client)
    ]
    status, report = request(server, "GET", "/v1/acme/sessions/cust/detect")
    assert status == 200
    served = {
        (v["cfd"], tuple(v["lhs_attributes"]), tuple(v["lhs_values"]))
        for v in report["violations"]
    }
    assert served == as_comparable(oracle(final))
    status, verified = request(
        server, "POST", "/v1/acme/sessions/cust/verify", {}
    )
    assert status == 200 and verified["ok"]


def test_resolve_timeout_knob(monkeypatch):
    assert resolve_timeout() == 30.0
    monkeypatch.setenv("REPRO_SERVE_TIMEOUT", "2.5")
    assert resolve_timeout() == 2.5
    assert resolve_timeout(1.0) == 1.0
    monkeypatch.setenv("REPRO_SERVE_TIMEOUT", "soon")
    with pytest.raises(ValueError):
        resolve_timeout()
    monkeypatch.setenv("REPRO_SERVE_TIMEOUT", "0")
    with pytest.raises(ValueError):
        resolve_timeout()


def test_stalled_client_cannot_pin_a_handler_thread():
    """A client that opens a connection and never finishes its request
    must get disconnected after REPRO_SERVE_TIMEOUT, not hold a handler
    thread (and its session locks) forever."""
    instance = serve_http(DetectionService(), timeout=0.5)
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = instance.server_address
        with socket.create_connection((host, port), timeout=10) as stalled:
            # a partial request line with no terminator: the server-side
            # readline can only end via the socket timeout
            stalled.sendall(b"POST /v1/t/sessions/s HTTP/1.1\r\n")
            stalled.settimeout(10)
            assert stalled.recv(1024) == b""  # server hung up
        # the server still answers well-behaved clients afterwards
        base = f"http://{host}:{port}"
        status, payload = request(base, "GET", "/healthz")
        assert status == 200 and payload["ok"] is True
    finally:
        instance.shutdown()
        instance.server_close()


def test_http_error_statuses(server):
    assert request(server, "GET", "/v1/acme/sessions/nope/detect")[0] == 404
    assert request(server, "POST", "/v1/acme/sessions/bad", {"cfds": [CFD]})[0] == 400
    request(server, "POST", "/v1/acme/sessions/dup", spec(base_rows(6)))
    assert request(server, "POST", "/v1/acme/sessions/dup", spec(base_rows(6)))[0] == 409
    assert request(server, "GET", "/v1/stats")[1]["live"] >= 1
    assert request(server, "DELETE", "/v1/acme/sessions/dup")[0] == 200
    assert request(server, "DELETE", "/v1/acme/sessions/dup")[0] == 404
