"""Tests for replication-aware detection (Section VIII extension)."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core import detect_violations, parse_cfd
from repro.datagen import cust_street_cfd, generate_cust
from repro.detect import pat_detect_s, replicated_pat_detect
from repro.distributed import ReplicatedCluster
from repro.partition import partition_uniform
from repro.relational import Relation, Schema

# every test in this module runs once per detection engine (see conftest)
pytestmark = pytest.mark.usefixtures("detection_engine")

S = Schema("R", ["id", "a", "b"], key=["id"])


def fragments_of(rows, n):
    relation = Relation(S, rows)
    return [
        Relation(S, rows[i::n]) for i in range(n)
    ], relation


# -- construction --------------------------------------------------------------


def test_placement_validation():
    frags, _ = fragments_of([(1, 1, "x"), (2, 2, "y")], 2)
    with pytest.raises(ValueError):
        ReplicatedCluster(frags, [{0}], 2)  # placement too short
    with pytest.raises(ValueError):
        ReplicatedCluster(frags, [{0}, set()], 2)  # fragment with no replica
    with pytest.raises(ValueError):
        ReplicatedCluster(frags, [{0}, {5}], 2)  # unknown site


def test_replicate_round_robin():
    base = partition_uniform(Relation(S, [(i, i, "x") for i in range(8)]), 4)
    cluster = ReplicatedCluster.replicate(base, 2)
    assert cluster.replicas_of(0) == frozenset({0, 1})
    assert cluster.replicas_of(3) == frozenset({3, 0})
    assert cluster.stored_tuples() == 2 * cluster.total_tuples()


def test_replicate_degree_bounds():
    base = partition_uniform(Relation(S, [(1, 1, "x")]), 2)
    with pytest.raises(ValueError):
        ReplicatedCluster.replicate(base, 0)
    with pytest.raises(ValueError):
        ReplicatedCluster.replicate(base, 3)


def test_fragments_at_and_reconstruct():
    frags, relation = fragments_of([(i, i % 2, "x") for i in range(6)], 3)
    cluster = ReplicatedCluster(frags, [{0, 1}, {1}, {2}], 3)
    assert cluster.fragments_at(1) == [0, 1]
    assert cluster.reconstruct() == relation


def test_balanced_scan_assignment_uses_replicas():
    big = Relation(S, [(i, 1, "x") for i in range(100)])
    small = Relation(S, [(100, 2, "y")])
    cluster = ReplicatedCluster([big, small], [{0, 1}, {0}], 2)
    chosen = cluster.balanced_scan_assignment()
    # the big fragment goes to the site the small one cannot use
    assert chosen == [1, 0]


# -- detection ------------------------------------------------------------------


def test_degree_one_equals_plain_patdetect():
    data = generate_cust(5000)
    base = partition_uniform(data, 4)
    cfd = cust_street_cfd(60)
    plain = pat_detect_s(base, cfd)
    replicated = replicated_pat_detect(
        ReplicatedCluster.replicate(base, 1), cfd
    )
    assert replicated.report.violations == plain.report.violations
    assert replicated.tuples_shipped == plain.tuples_shipped


def test_full_replication_ships_nothing():
    data = generate_cust(3000)
    base = partition_uniform(data, 4)
    cfd = cust_street_cfd(40)
    cluster = ReplicatedCluster.replicate(base, 4)
    outcome = replicated_pat_detect(cluster, cfd)
    assert outcome.tuples_shipped == 0
    expected = detect_violations(data, cfd, collect_tuples=False)
    assert outcome.report.violations == expected.violations


def test_shipment_monotone_in_replication_degree():
    data = generate_cust(4000)
    base = partition_uniform(data, 4)
    cfd = cust_street_cfd(60)
    shipped = []
    for degree in (1, 2, 3, 4):
        cluster = ReplicatedCluster.replicate(base, degree)
        shipped.append(replicated_pat_detect(cluster, cfd).tuples_shipped)
    assert shipped == sorted(shipped, reverse=True)
    assert shipped[-1] == 0


def test_constant_cfd_local_with_replication():
    data = generate_cust(2000)
    base = partition_uniform(data, 3)
    cluster = ReplicatedCluster.replicate(base, 2)
    cfd = parse_cfd("([CC=44] -> [city='nowhere'])", name="const")
    outcome = replicated_pat_detect(cluster, cfd)
    assert outcome.tuples_shipped == 0
    expected = detect_violations(data, cfd, collect_tuples=False)
    assert outcome.report.violations == expected.violations


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 2), st.sampled_from("xyz")),
        min_size=0,
        max_size=18,
    ),
    st.integers(2, 4),
    st.integers(1, 4),
)
def test_replicated_matches_centralized_random(body, n_sites, degree):
    degree = min(degree, n_sites)
    relation = Relation(S, [(i,) + r for i, r in enumerate(body)])
    base = partition_uniform(relation, n_sites)
    cluster = ReplicatedCluster.replicate(base, degree)
    cfd = parse_cfd("([a] -> [b]) with (0 || _), (_ || _)", name="r")
    expected = detect_violations(relation, cfd, collect_tuples=False)
    outcome = replicated_pat_detect(cluster, cfd)
    assert outcome.report.violations == expected.violations
    assert outcome.tuples_shipped <= len(relation)
