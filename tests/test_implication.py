"""Tests for CFD implication: chase vs a brute-force finite-model oracle."""

import itertools

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import (
    CFD,
    PatternTuple,
    WILDCARD,
    implies,
    implies_all,
    parse_cfd,
    satisfies,
)
from repro.relational import Relation, Schema

ATTRS = ("a", "b", "c")
SCHEMA = Schema("R", ("id",) + ATTRS, key=("id",))


def brute_force_implies(sigma, phi, domain):
    """Counterexample search over all ≤2-tuple instances.

    Sound and complete: CFD satisfaction is closed under sub-instances, so
    any violated instance contains a 1- or 2-tuple counterexample.  The
    domain must be large enough to act "infinite" (more values than cells).
    """
    for values in itertools.product(domain, repeat=2 * len(ATTRS)):
        rows = [
            (1,) + values[: len(ATTRS)],
            (2,) + values[len(ATTRS) :],
        ]
        instance = Relation(SCHEMA, rows)
        if all(satisfies(instance, s) for s in sigma) and not satisfies(
            instance, phi
        ):
            return False
    return True


# -- hand-written cases --------------------------------------------------------


def test_reflexivity_like_cases():
    fd = parse_cfd("([a, b] -> [a])")
    assert implies([], fd)  # t1[X]=t2[X] forces t1[a]=t2[a]


def test_fd_transitivity():
    ab = parse_cfd("([a] -> [b])")
    bc = parse_cfd("([b] -> [c])")
    assert implies([ab, bc], parse_cfd("([a] -> [c])"))
    assert not implies([ab], parse_cfd("([b] -> [c])"))
    assert not implies([bc], parse_cfd("([a] -> [c])"))


def test_fd_augmentation():
    ab = parse_cfd("([a] -> [b])")
    assert implies([ab], parse_cfd("([a, c] -> [b])"))


def test_pattern_weakening():
    # A CFD restricted to a=1 is implied by the unconditional FD.
    fd = parse_cfd("([a] -> [b])")
    conditional = parse_cfd("([a=1] -> [b])")
    assert implies([fd], conditional)
    assert not implies([conditional], fd)


def test_constant_chain():
    c1 = parse_cfd("([a=1] -> [b='x'])")
    c2 = parse_cfd("([b='x'] -> [c='y'])")
    assert implies([c1, c2], parse_cfd("([a=1] -> [c='y'])"))
    assert not implies([c2], parse_cfd("([a=1] -> [c='y'])"))


def test_constant_implies_matching_variable():
    # If a=1 forces b='x' then among a=1 tuples b is functionally determined.
    c1 = parse_cfd("([a=1] -> [b='x'])")
    assert implies([c1], parse_cfd("([a=1] -> [b])"))
    assert not implies([c1], parse_cfd("([a] -> [b])"))


def test_conflicting_constants_make_pattern_vacuous():
    # Σ forces a=1 tuples to have b='x' and b='y': no a=1 tuple can exist,
    # so anything conditioned on a=1 holds vacuously.
    c1 = parse_cfd("([a=1] -> [b='x'])")
    c2 = parse_cfd("([a=1] -> [b='y'])")
    assert implies([c1, c2], parse_cfd("([a=1] -> [c='z'])"))


def test_variable_cfd_with_constant_lhs_interplay():
    # (a=1, b) -> c  together with  a=1 -> b='x'  implies (a=1) -> c:
    # all a=1 tuples share b='x', hence agree on c.
    v = parse_cfd("([a, b] -> [c]) with (1, _ || _)")
    c1 = parse_cfd("([a=1] -> [b='x'])")
    assert implies([v, c1], parse_cfd("([a=1] -> [c])"))
    assert not implies([v], parse_cfd("([a=1] -> [c])"))


def test_implies_all():
    ab = parse_cfd("([a] -> [b])")
    bc = parse_cfd("([b] -> [c])")
    assert implies_all([ab, bc], [parse_cfd("([a] -> [c])"), ab])
    assert not implies_all([ab], [bc])


def test_multi_pattern_tableau_needs_every_row():
    phi = parse_cfd("([a] -> [b]) with (1 || _), (2 || _)")
    only_one = parse_cfd("([a] -> [b]) with (1 || _)")
    assert implies([phi], only_one)
    assert not implies([only_one], phi)


# -- oracle comparison ---------------------------------------------------------

DOMAIN = [0, 1, 2, 3, 4, 5, 6, 7]  # > 2 * |ATTRS| cells: behaves "infinite"


@st.composite
def small_cfds(draw):
    lhs_size = draw(st.integers(1, 2))
    attrs = draw(st.permutations(ATTRS).map(lambda p: list(p[: lhs_size + 1])))
    lhs, rhs = attrs[:-1], [attrs[-1]]
    tableau = []
    for _ in range(draw(st.integers(1, 2))):
        lhs_row = [
            draw(st.sampled_from([WILDCARD, 0, 1])) for _ in lhs
        ]
        rhs_row = [draw(st.sampled_from([WILDCARD, 0, 1])) for _ in rhs]
        tableau.append(PatternTuple(lhs_row, rhs_row))
    return CFD(lhs, rhs, tableau)


@settings(max_examples=40, deadline=None)
@given(st.lists(small_cfds(), min_size=0, max_size=2), small_cfds())
def test_chase_agrees_with_bruteforce(sigma, phi):
    assert implies(sigma, phi) == brute_force_implies(sigma, phi, DOMAIN)
