"""Tests for the SQL generation of [2] and the ``sql`` engine built on it.

The generated queries must return exactly ``Vioπ(φ, D)`` as computed by
the built-in detector — verified on the paper's running example and on
random instances (hypothesis).  Since the display-path SQL now executes on
the very table the ``sql`` engine loads (:func:`run_detection_on_sqlite`
shares the engine's relation handle), these tests also pin the generation
helpers and the engine to each other: drift in either fails here.
"""

import math

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core import (
    CFD,
    PatternTuple,
    SQLEngineError,
    WILDCARD,
    close_sql_handles,
    detect_violations,
    detect_violations_sql,
    duckdb_enabled,
    parse_cfd,
    resolve_sql_backend,
    sql_handle,
)
from repro.core.sql import (
    constant_violation_sql,
    create_table_sql,
    run_detection_on_sqlite,
    variable_violation_sql,
    violation_sql,
)
from repro.datagen import emp_instance, emp_tableau_cfds, generate_cust, cust_street_cfd
from repro.relational import Relation, Schema


def vio_pi(relation, cfds) -> set:
    report = detect_violations(relation, cfds, collect_tuples=False)
    return {(v.cfd, v.lhs_values) for v in report.violations}


def assert_sql_engine_matches_reference(relation, cfds):
    reference = detect_violations(relation, cfds, engine="reference")
    via_sql = detect_violations(relation, cfds, engine="sql")
    assert via_sql.violations == reference.violations
    assert via_sql.tuple_keys == reference.tuple_keys


# -- structure -----------------------------------------------------------


def test_fd_generates_only_group_by_query():
    fd = parse_cfd("([a, b] -> [c])")
    assert constant_violation_sql(fd, "T") is None
    variable = variable_violation_sql(fd, "T")
    assert "GROUP BY" in variable and "HAVING" in variable
    assert len(violation_sql(fd, "T")) == 1


def test_constant_cfd_generates_only_scan_query():
    cfd = parse_cfd("([a=1] -> [b='x'])")
    assert variable_violation_sql(cfd, "T") is None
    constant = constant_violation_sql(cfd, "T")
    assert "NOT (" in constant
    assert len(violation_sql(cfd, "T")) == 1


def test_mixed_cfd_generates_both_queries():
    cfd = CFD(
        ["a"],
        ["b", "c"],
        [PatternTuple((1,), ("x", WILDCARD))],
    )
    assert len(violation_sql(cfd, "T")) == 2


def test_identifiers_and_strings_quoted():
    cfd = CFD(["a"], ["b"], [PatternTuple(("o'brien",), (WILDCARD,))])
    (query,) = violation_sql(cfd, 'my"table')
    assert "'o''brien'" in query  # embedded quote doubled
    assert '"my""table"' in query


def test_create_table_declares_no_affinities():
    # declared types would let sqlite coerce values on insert ('2' under
    # INTEGER affinity becomes the integer 2), so columns stay untyped
    schema = Schema("R", ["i", "f", "s"], key=["i"])
    relation = Relation(schema, [(1, 2.5, "x")])
    ddl = create_table_sql(relation, "T")
    assert ddl == 'CREATE TABLE "T" ("i", "f", "s")'


# -- equivalence on the paper's example ------------------------------------


def test_sqlite_matches_detector_on_emp():
    d0 = emp_instance()
    cfds = emp_tableau_cfds()
    assert run_detection_on_sqlite(d0, cfds) == vio_pi(d0, cfds)


def test_sqlite_matches_detector_on_cust():
    data = generate_cust(3000)
    cfd = cust_street_cfd(80)
    assert run_detection_on_sqlite(data, cfd) == vio_pi(data, cfd)


# -- the engine entry point --------------------------------------------------


def test_engine_matches_reference_and_display_sql_on_emp():
    d0 = emp_instance()
    cfds = emp_tableau_cfds()
    assert_sql_engine_matches_reference(d0, cfds)
    # the display SQL and the engine agree on Vioπ — no drift
    report = detect_violations_sql(d0, cfds, collect_tuples=False)
    assert {(v.cfd, v.lhs_values) for v in report.violations} == (
        run_detection_on_sqlite(d0, cfds)
    )


def test_engine_collect_tuples_false_reports_no_keys():
    d0 = emp_instance()
    report = detect_violations_sql(d0, emp_tableau_cfds(), collect_tuples=False)
    assert report.violations and not report.tuple_keys


def test_handle_is_cached_per_relation():
    d0 = emp_instance()
    first = sql_handle(d0, backend="sqlite")
    assert sql_handle(d0, backend="sqlite") is first
    other = emp_instance()
    assert sql_handle(other, backend="sqlite") is not first


def test_dispatcher_routes_sql_engine(monkeypatch):
    d0 = emp_instance()
    monkeypatch.setenv("REPRO_ENGINE", "sql")
    via_env = detect_violations(d0, emp_tableau_cfds())
    monkeypatch.setenv("REPRO_ENGINE", "reference")
    reference = detect_violations(d0, emp_tableau_cfds())
    assert via_env.violations == reference.violations
    assert via_env.tuple_keys == reference.tuple_keys


# -- backend resolution ------------------------------------------------------


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown SQL backend"):
        resolve_sql_backend("postgres")


def test_unknown_backend_env_rejected(monkeypatch):
    monkeypatch.setenv("REPRO_SQL_BACKEND", "bogus")
    with pytest.raises(ValueError, match="unknown SQL backend"):
        resolve_sql_backend()


def test_auto_backend_always_resolves():
    assert resolve_sql_backend("auto") == "auto"
    assert resolve_sql_backend("sqlite") == "sqlite"


@pytest.mark.skipif(duckdb_enabled(), reason="duckdb importable here")
def test_duckdb_backend_without_duckdb_fails_loudly():
    with pytest.raises(RuntimeError, match="duckdb"):
        resolve_sql_backend("duckdb")


@pytest.mark.skipif(not duckdb_enabled(), reason="duckdb not importable")
def test_duckdb_backend_matches_reference_on_emp():
    d0 = emp_instance()
    cfds = emp_tableau_cfds()
    reference = detect_violations(d0, cfds, engine="reference")
    report = detect_violations_sql(d0, cfds, backend="duckdb")
    assert report.violations == reference.violations
    assert report.tuple_keys == reference.tuple_keys


# -- quoting / parameterization regressions ----------------------------------

# the breaking inputs of the audit: identifiers with spaces and embedded
# quotes, values with quotes, percent signs and injection-shaped payloads
NASTY_SCHEMA = Schema(
    "nasty", ("row id", 'att"r', "va'l"), key=("row id",)
)
NASTY_ROWS = [
    (1, "o'brien", "100%"),
    (2, "o'brien", "100%"),
    (3, "o'brien", "'; DROP TABLE D; --"),
    (4, 'quo"ted', "100%"),
    (5, "plain", "_ LIKE %"),
]


def nasty_relation():
    return Relation(NASTY_SCHEMA, NASTY_ROWS)


def test_engine_handles_quoted_identifiers_and_values():
    relation = nasty_relation()
    fd = CFD(
        ('att"r',), ("va'l",), [PatternTuple((WILDCARD,), (WILDCARD,))],
        name="fd",
    )
    constant = CFD(
        ('att"r',),
        ("va'l",),
        [PatternTuple(("o'brien",), ("100%",))],
        name="const",
    )
    assert_sql_engine_matches_reference(relation, [fd, constant])


def test_display_sql_survives_quoted_identifiers_and_values():
    relation = nasty_relation()
    constant = CFD(
        ('att"r',),
        ("va'l",),
        [PatternTuple(("o'brien",), ("100%",))],
        name="const",
    )
    assert run_detection_on_sqlite(relation, constant) == vio_pi(
        relation, constant
    )


def test_injection_shaped_values_stay_data():
    relation = nasty_relation()
    constant = CFD(
        ("va'l",),
        ('att"r',),
        [PatternTuple(("'; DROP TABLE D; --",), ("never",))],
        name="inj",
    )
    assert_sql_engine_matches_reference(relation, [constant])
    # the table must still exist afterwards (the payload stayed a value)
    assert detect_violations_sql(relation, [constant]).violations


# -- unrepresentable values fail loudly --------------------------------------


def test_nan_cells_rejected():
    schema = Schema("R", ("id", "a"), key=("id",))
    relation = Relation(schema, [(1, math.nan)])
    fd = CFD(("a",), ("id",), [PatternTuple((WILDCARD,), (WILDCARD,))])
    with pytest.raises(SQLEngineError, match="NaN"):
        detect_violations_sql(relation, fd)


def test_oversized_integers_rejected():
    schema = Schema("R", ("id", "a"), key=("id",))
    relation = Relation(schema, [(1, 2**63)])
    fd = CFD(("a",), ("id",), [PatternTuple((WILDCARD,), (WILDCARD,))])
    with pytest.raises(SQLEngineError, match="64 bits"):
        detect_violations_sql(relation, fd)


def test_non_primitive_cells_rejected():
    schema = Schema("R", ("id", "a"), key=("id",))
    relation = Relation(schema, [(1, (2, 3))])
    fd = CFD(("a",), ("id",), [PatternTuple((WILDCARD,), (WILDCARD,))])
    with pytest.raises(SQLEngineError, match="not\\s+representable"):
        detect_violations_sql(relation, fd)


# -- equivalence on random instances ----------------------------------------

ATTRS = ("a", "b", "c")
SCHEMA = Schema("R", ("id",) + ATTRS, key=("id",))


@st.composite
def random_case(draw):
    rows = draw(
        st.lists(
            st.tuples(*[st.integers(0, 2) for _ in ATTRS]),
            min_size=0,
            max_size=20,
        )
    )
    relation = Relation(SCHEMA, [(i,) + r for i, r in enumerate(rows)])
    lhs_size = draw(st.integers(1, 2))
    attrs = draw(st.permutations(ATTRS).map(lambda p: list(p[: lhs_size + 1])))
    lhs, rhs = attrs[:-1], [attrs[-1]]
    tableau = [
        PatternTuple(
            [draw(st.sampled_from([WILDCARD, 0, 1, 2])) for _ in lhs],
            [draw(st.sampled_from([WILDCARD, 0, 1, 2])) for _ in rhs],
        )
        for _ in range(draw(st.integers(1, 3)))
    ]
    cfd = CFD(lhs, rhs, tableau, name="r")
    return relation, cfd


@settings(max_examples=80, deadline=None)
@given(random_case())
def test_sqlite_matches_detector_random(case):
    relation, cfd = case
    assert run_detection_on_sqlite(relation, cfd) == vio_pi(relation, cfd)


@settings(max_examples=80, deadline=None)
@given(random_case())
def test_engine_matches_reference_random(case):
    relation, cfd = case
    assert_sql_engine_matches_reference(relation, [cfd])


# -- the handle cache: bounded LRU that closes what it evicts ------------


def _tiny_relation(tag: int) -> Relation:
    schema = Schema(f"r{tag}", ("k", "v"), key=("k",))
    return Relation(schema, [(1, tag), (2, tag)])


def test_handle_cache_eviction_closes_the_connection(monkeypatch):
    """Filling the cache past REPRO_SQL_HANDLES must evict LRU-first and
    actually close the evicted database connection — a long-running host
    cycling through relations must not leak file handles."""
    close_sql_handles()
    monkeypatch.setenv("REPRO_SQL_HANDLES", "3")
    relations = [_tiny_relation(i) for i in range(5)]
    handles = [sql_handle(relation, backend="sqlite") for relation in relations]
    # the two oldest were evicted; their connections are closed for real
    for evicted in handles[:2]:
        with pytest.raises(Exception) as caught:
            evicted._connection.execute("SELECT 1")
        assert "closed" in str(caught.value).lower()
    # the three youngest still answer, and re-requesting one is a cache
    # hit (same object), not a rebuild
    for kept, relation in zip(handles[2:], relations[2:]):
        assert kept._connection.execute("SELECT 1") is not None
        assert sql_handle(relation, backend="sqlite") is kept
    # an evicted relation gets a *fresh* working handle on re-request
    fresh = sql_handle(relations[0], backend="sqlite")
    assert fresh is not handles[0]
    assert fresh._connection.execute("SELECT 1") is not None
    close_sql_handles()


def test_resolve_handle_cap_rejects_garbage(monkeypatch):
    from repro.core.sql import resolve_handle_cap

    assert resolve_handle_cap() == 8
    monkeypatch.setenv("REPRO_SQL_HANDLES", "16")
    assert resolve_handle_cap() == 16
    monkeypatch.setenv("REPRO_SQL_HANDLES", "lots")
    with pytest.raises(ValueError):
        resolve_handle_cap()
    monkeypatch.setenv("REPRO_SQL_HANDLES", "0")
    with pytest.raises(ValueError):
        resolve_handle_cap()


def teardown_module(module):
    close_sql_handles()
