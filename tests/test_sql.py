"""Tests for the SQL generation of [2], executed on sqlite3.

The generated queries must return exactly ``Vioπ(φ, D)`` as computed by
the built-in detector — verified on the paper's running example and on
random instances (hypothesis).
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import CFD, PatternTuple, WILDCARD, detect_violations, parse_cfd
from repro.core.sql import (
    constant_violation_sql,
    create_table_sql,
    run_detection_on_sqlite,
    variable_violation_sql,
    violation_sql,
)
from repro.datagen import emp_instance, emp_tableau_cfds, generate_cust, cust_street_cfd
from repro.relational import Relation, Schema


def vio_pi(relation, cfds) -> set:
    report = detect_violations(relation, cfds, collect_tuples=False)
    return {(v.cfd, v.lhs_values) for v in report.violations}


# -- structure -----------------------------------------------------------


def test_fd_generates_only_group_by_query():
    fd = parse_cfd("([a, b] -> [c])")
    assert constant_violation_sql(fd, "T") is None
    variable = variable_violation_sql(fd, "T")
    assert "GROUP BY" in variable and "HAVING" in variable
    assert len(violation_sql(fd, "T")) == 1


def test_constant_cfd_generates_only_scan_query():
    cfd = parse_cfd("([a=1] -> [b='x'])")
    assert variable_violation_sql(cfd, "T") is None
    constant = constant_violation_sql(cfd, "T")
    assert "NOT (" in constant
    assert len(violation_sql(cfd, "T")) == 1


def test_mixed_cfd_generates_both_queries():
    cfd = CFD(
        ["a"],
        ["b", "c"],
        [PatternTuple((1,), ("x", WILDCARD))],
    )
    assert len(violation_sql(cfd, "T")) == 2


def test_identifiers_and_strings_quoted():
    cfd = CFD(["a"], ["b"], [PatternTuple(("o'brien",), (WILDCARD,))])
    (query,) = violation_sql(cfd, 'my"table')
    assert "'o''brien'" in query  # embedded quote doubled
    assert '"my""table"' in query


def test_create_table_affinities():
    schema = Schema("R", ["i", "f", "s"], key=["i"])
    relation = Relation(schema, [(1, 2.5, "x")])
    ddl = create_table_sql(relation, "T")
    assert '"i" INTEGER' in ddl and '"f" REAL' in ddl and '"s" TEXT' in ddl


# -- equivalence on the paper's example ------------------------------------


def test_sqlite_matches_detector_on_emp():
    d0 = emp_instance()
    cfds = emp_tableau_cfds()
    assert run_detection_on_sqlite(d0, cfds) == vio_pi(d0, cfds)


def test_sqlite_matches_detector_on_cust():
    data = generate_cust(3000)
    cfd = cust_street_cfd(80)
    assert run_detection_on_sqlite(data, cfd) == vio_pi(data, cfd)


# -- equivalence on random instances ----------------------------------------

ATTRS = ("a", "b", "c")
SCHEMA = Schema("R", ("id",) + ATTRS, key=("id",))


@st.composite
def random_case(draw):
    rows = draw(
        st.lists(
            st.tuples(*[st.integers(0, 2) for _ in ATTRS]),
            min_size=0,
            max_size=20,
        )
    )
    relation = Relation(SCHEMA, [(i,) + r for i, r in enumerate(rows)])
    lhs_size = draw(st.integers(1, 2))
    attrs = draw(st.permutations(ATTRS).map(lambda p: list(p[: lhs_size + 1])))
    lhs, rhs = attrs[:-1], [attrs[-1]]
    tableau = [
        PatternTuple(
            [draw(st.sampled_from([WILDCARD, 0, 1, 2])) for _ in lhs],
            [draw(st.sampled_from([WILDCARD, 0, 1, 2])) for _ in rhs],
        )
        for _ in range(draw(st.integers(1, 3)))
    ]
    cfd = CFD(lhs, rhs, tableau, name="r")
    return relation, cfd


@settings(max_examples=80, deadline=None)
@given(random_case())
def test_sqlite_matches_detector_random(case):
    relation, cfd = case
    assert run_detection_on_sqlite(relation, cfd) == vio_pi(relation, cfd)
