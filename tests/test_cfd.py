"""Unit tests for the CFD formalism (repro.core.cfd) and its parser."""

import pytest

from repro.core import (
    CFD,
    CFDError,
    PatternTuple,
    WILDCARD,
    format_cfd,
    is_wildcard,
    matches,
    parse_cfd,
    satisfies,
    tuple_matches,
)
from repro.relational import Relation, Schema


# -- the match operator ≍ ----------------------------------------------------


def test_wildcard_matches_anything():
    assert matches("Mayfield", WILDCARD)
    assert matches(44, WILDCARD)


def test_constant_matches_only_itself():
    assert matches("EDI", "EDI")
    assert not matches("NYC", "EDI")


def test_tuple_match_paper_example():
    # (Mayfield, EDI) ≍ (_, EDI) but (Mayfield, EDI) ≭ (_, NYC)
    assert tuple_matches(("Mayfield", "EDI"), (WILDCARD, "EDI"))
    assert not tuple_matches(("Mayfield", "EDI"), (WILDCARD, "NYC"))


def test_wildcard_is_singleton():
    import copy

    assert copy.deepcopy(WILDCARD) is WILDCARD
    assert is_wildcard(WILDCARD)
    assert not is_wildcard("_")


# -- construction -------------------------------------------------------------


def test_fd_default_tableau_is_all_wildcards():
    fd = CFD(["a", "b"], ["c"])
    assert fd.is_fd()
    assert fd.tableau[0].lhs == (WILDCARD, WILDCARD)


def test_pattern_width_validated():
    with pytest.raises(CFDError):
        CFD(["a", "b"], ["c"], [PatternTuple((1,), (WILDCARD,))])


def test_empty_sides_rejected():
    with pytest.raises(CFDError):
        CFD([], ["c"])
    with pytest.raises(CFDError):
        CFD(["a"], [])


def test_duplicate_attribute_in_side_rejected():
    with pytest.raises(CFDError):
        CFD(["a", "a"], ["c"])


def test_attribute_on_both_sides_allowed():
    cfd = CFD(["a"], ["a"])  # t[A_L] and t[A_R]
    assert cfd.attributes == ("a",)


def test_empty_tableau_rejected():
    with pytest.raises(CFDError):
        CFD(["a"], ["b"], [])


def test_attributes_order_lhs_first():
    cfd = CFD(["b", "a"], ["c", "a"])
    assert cfd.attributes == ("b", "a", "c")


# -- satisfaction -------------------------------------------------------------

S = Schema("R", ["id", "cc", "zip", "street"], key=["id"])


def test_satisfies_holds_on_consistent_data():
    relation = Relation(S, [(1, 44, "Z1", "High St"), (2, 44, "Z2", "Low St")])
    cfd = parse_cfd("([cc=44, zip] -> [street])")
    assert satisfies(relation, cfd)


def test_satisfies_fails_on_fd_conflict():
    relation = Relation(S, [(1, 44, "Z1", "High St"), (2, 44, "Z1", "Low St")])
    cfd = parse_cfd("([cc=44, zip] -> [street])")
    assert not satisfies(relation, cfd)


def test_satisfies_ignores_non_matching_pattern():
    relation = Relation(S, [(1, 1, "Z1", "High St"), (2, 1, "Z1", "Low St")])
    cfd = parse_cfd("([cc=44, zip] -> [street])")
    assert satisfies(relation, cfd)  # pattern requires cc=44


def test_satisfies_rhs_constant_single_tuple():
    relation = Relation(S, [(1, 44, "Z1", "High St")])
    cfd = parse_cfd("([cc=44] -> [street='Low St'])")
    assert not satisfies(relation, cfd)


# -- parser -------------------------------------------------------------------


def test_parse_plain_fd():
    cfd = parse_cfd("([CC, title] -> [salary])")
    assert cfd.lhs == ("CC", "title")
    assert cfd.rhs == ("salary",)
    assert cfd.is_fd()


def test_parse_inline_constants():
    cfd = parse_cfd("([CC=44, zip] -> [street])")
    tp = cfd.tableau[0]
    assert tp.lhs == (44, WILDCARD)
    assert tp.rhs == (WILDCARD,)


def test_parse_rhs_constant():
    cfd = parse_cfd("([CC=44, AC=131] -> [city='EDI'])")
    assert cfd.tableau[0].rhs == ("EDI",)


def test_parse_with_tableau():
    cfd = parse_cfd("([CC, zip] -> [street]) with (44, _ || _), (31, _ || _)")
    assert len(cfd.tableau) == 2
    assert cfd.tableau[0].lhs == (44, WILDCARD)
    assert cfd.tableau[1].lhs == (31, WILDCARD)


def test_parse_tableau_rhs_defaults_to_wildcards():
    cfd = parse_cfd("([a, b] -> [c]) with (1, 2), (3, _)")
    assert all(tp.rhs == (WILDCARD,) for tp in cfd.tableau)


def test_parse_quoted_values_stay_strings():
    cfd = parse_cfd("([a] -> [b]) with ('44' || 'x y')")
    assert cfd.tableau[0].lhs == ("44",)
    assert cfd.tableau[0].rhs == ("x y",)


def test_parse_negative_numbers():
    cfd = parse_cfd("([a=-5] -> [b])")
    assert cfd.tableau[0].lhs == (-5,)


def test_parse_rejects_mixing_inline_and_tableau():
    with pytest.raises(CFDError):
        parse_cfd("([a=1] -> [b]) with (2 || _)")


def test_parse_rejects_garbage():
    with pytest.raises(CFDError):
        parse_cfd("this is not a cfd")


def test_parse_rejects_wrong_arity_pattern():
    with pytest.raises(CFDError):
        parse_cfd("([a, b] -> [c]) with (1 || _)")


def test_format_roundtrip():
    original = parse_cfd(
        "([CC, AC] -> [city]) with (44, 131 || 'EDI'), (1, 908 || 'MH')"
    )
    assert parse_cfd(format_cfd(original)) == original


def test_named_cfd():
    cfd = parse_cfd("([a] -> [b])", name="myrule")
    assert cfd.name == "myrule"
