"""Integration test: the full Figure 3 pipeline at micro scale.

Runs every experiment end to end (generation → partitioning → detection →
series capture → persistence) at REPRO_SCALE=0.002, checking structure
rather than shapes (shapes are asserted at full scale by the benchmarks).
"""

import pytest

from repro.experiments import ALL_FIGURES, run_all


@pytest.fixture(autouse=True)
def micro_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.002")


def test_run_all_produces_every_figure(tmp_path):
    results = run_all(save_dir=str(tmp_path))
    assert set(results) == set(ALL_FIGURES)
    for name, result in results.items():
        assert result.experiment_id == name
        assert result.xs, name
        assert result.series, name
        for series in result.series:
            assert len(series.ys) == len(result.xs), (name, series.label)
            assert all(y >= 0 for y in series.ys), (name, series.label)
        assert (tmp_path / f"{name}.txt").exists()


def test_site_sweeps_share_x_axis():
    for name in ("fig3a", "fig3b", "fig3f", "fig3g", "fig3h"):
        result = ALL_FIGURES[name]()
        assert result.xs == [2, 3, 4, 5, 6, 7, 8], name


def test_data_sweeps_cover_ten_steps():
    for name in ("fig3c", "fig3i"):
        result = ALL_FIGURES[name]()
        assert result.xs == list(range(1, 11)), name
