"""Tests for hash indexes, the load-balancing strategy and semijoin pruning."""

import pytest

from repro.core import detect_violations, parse_cfd
from repro.datagen import (
    cust_street_cfd,
    emp_instance,
    emp_tableau_cfds,
    emp_vertical_attribute_sets,
    generate_cust,
)
from repro.detect import (
    pat_detect_s,
    pat_detect_with_strategy,
    select_balanced,
    vertical_detect,
)
from repro.partition import partition_uniform, vertical_partition
from repro.relational import HashIndex, Relation, Schema, SchemaError

# every test in this module runs once per detection engine (see conftest)
pytestmark = pytest.mark.usefixtures("detection_engine")

S = Schema("R", ["id", "a", "b"], key=["id"])
REL = Relation(S, [(1, 1, "x"), (2, 1, "y"), (3, 2, "x"), (4, 2, "x")])


# -- HashIndex ------------------------------------------------------------


def test_index_lookup():
    index = HashIndex(REL, ["a"])
    assert len(index.lookup((1,))) == 2
    assert index.lookup((9,)) == []
    assert index.contains((2,))
    assert not index.contains((9,))


def test_index_composite_key():
    index = HashIndex(REL, ["a", "b"])
    assert len(index.lookup((2, "x"))) == 2
    assert len(index) == 3  # (1,x), (1,y), (2,x)


def test_index_group_sizes():
    index = HashIndex(REL, ["a"])
    assert index.group_sizes() == {(1,): 2, (2,): 2}


def test_index_distinct_keys():
    index = HashIndex(REL, ["b"])
    assert set(index.distinct_keys()) == {("x",), ("y",)}


def test_index_semijoin():
    index = HashIndex(REL, ["a"])
    result = index.semijoin([(1,), (1,), (9,)])
    assert sorted(row[0] for row in result.rows) == [1, 2]


def test_index_requires_attributes():
    with pytest.raises(SchemaError):
        HashIndex(REL, [])
    with pytest.raises(SchemaError):
        HashIndex(REL, ["nope"])


# -- load-balancing coordinator strategy -------------------------------------


def test_select_balanced_spreads_patterns():
    data = generate_cust(6000)
    cluster = partition_uniform(data, 4)
    cfd = cust_street_cfd(80)
    balanced = pat_detect_with_strategy(
        cluster, cfd, select_balanced, name="PATDETECT-BAL"
    )
    greedy = pat_detect_s(cluster, cfd)
    # correctness preserved
    assert balanced.report.violations == greedy.report.violations
    # the balanced assignment uses more coordinator sites than a collapsed one
    coords = balanced.details["coordinators"][cfd.name]
    assert len(set(coords)) > 1


def test_select_balanced_on_skewed_stats():
    """One dominant site must not monopolize every pattern."""
    from repro.distributed import Cluster, Site

    schema = Schema("R", ["id", "k", "v"], key=["id"])
    hot_rows = [(i, i % 4, "x") for i in range(400)]
    cold_rows = [(1000 + i, i % 4, "y") for i in range(12)]
    cluster = Cluster(
        [
            Site(0, Relation(schema, hot_rows)),
            Site(1, Relation(schema, cold_rows)),
            Site(2, Relation(schema, [])),
        ]
    )
    cfd = parse_cfd(
        "([k] -> [v]) with (0 || _), (1 || _), (2 || _), (3 || _)", name="k"
    )
    outcome = pat_detect_with_strategy(
        cluster, cfd, select_balanced, name="PATDETECT-BAL"
    )
    coords = outcome.details["coordinators"]["k"]
    assert len(set(coords)) >= 2  # spread, not all on the hot site
    relation = cluster.reconstruct()
    assert outcome.report.violations == detect_violations(
        relation, cfd, collect_tuples=False
    ).violations


# -- semijoin pruning in vertical detection ------------------------------------


def test_vertical_prune_preserves_violations():
    d0 = emp_instance()
    cluster = vertical_partition(d0, emp_vertical_attribute_sets())
    phis = emp_tableau_cfds()
    expected = detect_violations(d0, phis, collect_tuples=False).violations
    plain = vertical_detect(cluster, phis)
    pruned = vertical_detect(cluster, phis, prune=True)
    assert plain.report.violations == expected
    assert pruned.report.violations == expected


def test_vertical_prune_reduces_shipment():
    d0 = emp_instance()
    cluster = vertical_partition(d0, emp_vertical_attribute_sets())
    phi1 = emp_tableau_cfds()[0]  # patterns bind CC to 44 / 31
    plain = vertical_detect(cluster, phi1)
    pruned = vertical_detect(cluster, phi1, prune=True)
    # t6, t7 (CC = 1) need not ship their phone columns
    assert pruned.tuples_shipped < plain.tuples_shipped
    assert pruned.report.violations == plain.report.violations


def test_vertical_prune_noop_for_fd():
    d0 = emp_instance()
    cluster = vertical_partition(d0, emp_vertical_attribute_sets())
    phi2 = emp_tableau_cfds()[1]  # an FD: all-wildcard pattern
    plain = vertical_detect(cluster, phi2)
    pruned = vertical_detect(cluster, phi2, prune=True)
    assert pruned.tuples_shipped == plain.tuples_shipped
    assert pruned.report.violations == plain.report.violations


def test_vertical_prune_random_instances():
    import random

    rng = random.Random(5)
    schema = Schema("R", ["id", "a", "b", "c"], key=["id"])
    for trial in range(20):
        rows = [
            (i, rng.randrange(3), rng.randrange(3), rng.choice("xy"))
            for i in range(rng.randrange(1, 15))
        ]
        relation = Relation(schema, rows)
        cluster = vertical_partition(
            relation, {"V1": ["a"], "V2": ["b"], "V3": ["c"]}
        )
        cfd = parse_cfd("([a, b] -> [c]) with (0, _ || _), (1, 2 || _)")
        expected = detect_violations(relation, cfd, collect_tuples=False)
        pruned = vertical_detect(cluster, cfd, prune=True)
        assert pruned.report.violations == expected.violations
