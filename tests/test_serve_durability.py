"""Durability of resident sessions: WAL, snapshots, restart recovery.

The property under test everywhere: after any crash — process
abandonment, SIGKILL mid-stream, injected torn writes, silent bit
flips — a restart over the same ``--data-dir`` rebuilds each session to
exactly the serial replay of its *acknowledged* prefix, and corruption
quarantines (the server keeps serving) instead of crashing recovery.
"""

from __future__ import annotations

import json
import os
import signal
import struct
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

import repro
from repro.core import detect_violations, parse_cfd
from repro.core.faults import FaultPlan, fault_plan
from repro.relational import Relation
from repro.relational.schema import Schema
from repro.serve import (
    BadSnapshot,
    DetectionService,
    DurableStore,
    ManagedSession,
    WALError,
    read_wal,
    resolve_checkpoint,
    resolve_fsync,
)

CFD = "([CC=44, zip] -> [street])"
SCHEMA = {
    "name": "cust",
    "attributes": ["id", "CC", "zip", "street"],
    "key": ["id"],
}


def base_rows(n: int = 40) -> list[list]:
    rows = []
    for i in range(n):
        street = f"S{i % 3}" if i % 5 else "CONFLICT"
        rows.append([i, 44 if i % 2 else 99, f"Z{i % 7}", street])
    return rows


def spec(rows, kind="central", sites=3, cfds=(CFD,)) -> dict:
    built = {"kind": kind, "schema": SCHEMA, "cfds": list(cfds), "rows": rows}
    if kind != "central":
        built["sites"] = sites
    return built


def oracle(rows) -> set:
    relation = Relation(
        Schema(SCHEMA["name"], SCHEMA["attributes"], SCHEMA["key"]),
        [tuple(row) for row in rows],
    )
    return set(detect_violations(relation, parse_cfd(CFD)).violations)


def served_violations(service, tenant, name) -> set:
    return {
        (v["cfd"], tuple(v["lhs_attributes"]), tuple(v["lhs_values"]))
        for v in service.detect(tenant, name)["violations"]
    }


def as_comparable(violations) -> set:
    return {
        (v.cfd, tuple(v.lhs_attributes), tuple(v.lhs_values))
        for v in violations
    }


def resident_ids(service, tenant, name) -> list:
    snapshot = service.snapshot(tenant, name)
    return sorted(row[0] for rows in snapshot["fragments"] for row in rows)


def wal_files(data_dir: Path) -> list[Path]:
    return sorted(data_dir.glob("*/*/wal.*.log"))


# -- knob resolution -----------------------------------------------------------


def test_resolve_fsync_accepts_policies(monkeypatch):
    assert resolve_fsync() == "batch"
    for policy in ("always", "batch", "off"):
        monkeypatch.setenv("REPRO_SERVE_FSYNC", policy)
        assert resolve_fsync() == policy
    assert resolve_fsync("always") == "always"


def test_resolve_fsync_rejects_garbage(monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_FSYNC", "sometimes")
    with pytest.raises(ValueError):
        resolve_fsync()


def test_resolve_checkpoint_rejects_garbage(monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_CHECKPOINT", "many")
    with pytest.raises(ValueError):
        resolve_checkpoint()
    monkeypatch.setenv("REPRO_SERVE_CHECKPOINT", "0")
    with pytest.raises(ValueError):
        resolve_checkpoint()
    monkeypatch.setenv("REPRO_SERVE_CHECKPOINT", "12")
    assert resolve_checkpoint() == 12


# -- the WAL format ------------------------------------------------------------


def test_wal_records_roundtrip(tmp_path):
    store = DurableStore(tmp_path, fsync="always", checkpoint=1000)
    journal = store.journal("t", "s")
    batches = [
        [[0, [], [[1, 44, "Z0", "A"]]]],
        [[0, [1], []]],
        [[2, [3, 4], [[5, 44, "Z1", "B"], [6, 99, "Z2", "C"]]]],
    ]
    for batch in batches:
        journal.log(batch)
    scan = read_wal(journal.wal_path(journal.epoch))
    assert scan.tail_reason is None
    assert [record["updates"] for record in scan.records] == batches
    assert store.stats()["wal_records"] == 3


def test_wal_scan_stops_at_torn_and_corrupt_tails(tmp_path):
    store = DurableStore(tmp_path, fsync="always", checkpoint=1000)
    journal = store.journal("t", "s")
    journal.log([[0, [], [[1, 44, "Z0", "A"]]]])
    journal.log([[0, [], [[2, 44, "Z0", "B"]]]])
    path = journal.wal_path(journal.epoch)
    clean = path.read_bytes()

    # torn frame header
    path.write_bytes(clean + b"\x00\x00")
    scan = read_wal(path)
    assert len(scan.records) == 2 and scan.tail_reason == "torn frame header"

    # torn payload
    path.write_bytes(clean + struct.pack(">II", 100, 0) + b"short")
    scan = read_wal(path)
    assert len(scan.records) == 2 and scan.tail_reason == "torn record payload"

    # CRC mismatch: flip one byte inside the second record's payload
    broken = bytearray(clean)
    broken[-3] ^= 0xFF
    path.write_bytes(bytes(broken))
    scan = read_wal(path)
    assert len(scan.records) == 1 and scan.tail_reason == "CRC mismatch"

    # absurd length field cannot swallow the scan
    path.write_bytes(clean + struct.pack(">II", 1 << 31, 0))
    scan = read_wal(path)
    assert len(scan.records) == 2 and "length" in scan.tail_reason


# -- restart recovery ----------------------------------------------------------


@pytest.mark.parametrize("kind", ["central", "pat-s", "clust"])
def test_restart_recovers_equivalent_state(tmp_path, kind):
    rows = base_rows()
    service = DetectionService(data_dir=tmp_path, fsync="always")
    service.create_session("t", "s", spec(rows, kind=kind))
    site = {} if kind == "central" else {"site": 1}
    service.update("t", "s", inserted=[[200, 44, "Z1", "N1"]], **site)
    service.update("t", "s", inserted=[[201, 44, "Z1", "N2"]], **site)
    service.update("t", "s", deleted=[200], **site)
    before = service.detect("t", "s")

    # abandon without any clean shutdown, then restart over the same dir
    revived = DetectionService(data_dir=tmp_path, fsync="always")
    assert revived.recovered == 1
    assert revived.detect("t", "s") == before
    final = rows + [[201, 44, "Z1", "N2"]]
    assert served_violations(revived, "t", "s") == as_comparable(oracle(final))
    assert revived.verify("t", "s")["ok"]
    # the revived session keeps absorbing updates durably
    revived.update("t", "s", inserted=[[202, 44, "Z1", "N3"]], **site)
    third = DetectionService(data_dir=tmp_path, fsync="always")
    assert resident_ids(third, "t", "s") == resident_ids(revived, "t", "s")


def test_recovery_equals_serial_replay_of_acknowledged_prefix(tmp_path):
    """The core property over a seeded mixed workload (inserts+deletes)."""
    rows = base_rows(30)
    service = DetectionService(data_dir=tmp_path, fsync="always")
    service.create_session("t", "s", spec(rows))
    alive = [row[0] for row in rows]
    acked = list(rows)
    for i in range(40, 90):
        if i % 4 == 0 and alive:
            victim = alive.pop(i % len(alive))
            service.update("t", "s", deleted=[victim])
            acked = [row for row in acked if row[0] != victim]
        else:
            row = [i, 44, f"Z{i % 5}", f"S{i % 3}" if i % 6 else "CONFLICT"]
            service.update("t", "s", inserted=[row])
            acked.append(row)
            alive.append(i)
    revived = DetectionService(data_dir=tmp_path, fsync="always")
    assert resident_ids(revived, "t", "s") == sorted(r[0] for r in acked)
    assert served_violations(revived, "t", "s") == as_comparable(oracle(acked))
    assert revived.verify("t", "s")["ok"]


def test_checkpoint_truncates_wal_and_bounds_replay(tmp_path):
    service = DetectionService(data_dir=tmp_path, fsync="batch", checkpoint=4)
    service.create_session("t", "s", spec(base_rows()))
    for i in range(50, 64):
        service.update("t", "s", inserted=[[i, 44, "Z1", f"S{i % 3}"]])
    stats = service.stats()["durability"]
    assert stats["checkpoints"] >= 3  # the create, plus every 4 records
    files = wal_files(tmp_path)
    assert len(files) == 1  # old epochs deleted
    assert len(read_wal(files[0]).records) < 4 + 1
    revived = DetectionService(data_dir=tmp_path, fsync="batch", checkpoint=4)
    assert revived.stats()["durability"].get("replayed_records", 0) < 5
    assert revived.detect("t", "s") == service.detect("t", "s")


def test_lru_retire_checkpoints_parked_snapshot_to_disk(tmp_path):
    service = DetectionService(
        max_sessions=1, data_dir=tmp_path, fsync="always"
    )
    service.create_session("t", "a", spec(base_rows()))
    service.update("t", "a", inserted=[[500, 44, "Z0", "PARKED"]])
    service.create_session("t", "b", spec(base_rows()))  # retires "a"
    assert service.stats()["parked"] == 1
    # a restart must see the retired session's *post-update* state even
    # though it was parked, not live, at crash time
    revived = DetectionService(data_dir=tmp_path, fsync="always")
    assert revived.recovered == 2
    assert 500 in resident_ids(revived, "t", "a")
    assert revived.verify("t", "a")["ok"]


def test_drop_removes_durable_state(tmp_path):
    service = DetectionService(data_dir=tmp_path, fsync="always")
    service.create_session("t", "s", spec(base_rows()))
    assert wal_files(tmp_path)
    service.drop("t", "s")
    assert not wal_files(tmp_path)
    revived = DetectionService(data_dir=tmp_path, fsync="always")
    assert revived.recovered == 0


def test_session_names_cannot_escape_the_store(tmp_path):
    service = DetectionService(data_dir=tmp_path, fsync="off")
    service.create_session("..", "../../etc", spec(base_rows(6)))
    service.create_session("t", ".hidden", spec(base_rows(6)))
    inside = [p.relative_to(tmp_path) for p in tmp_path.rglob("snapshot.json")]
    assert len(inside) == 2  # both landed under the root, encoded
    revived = DetectionService(data_dir=tmp_path, fsync="off")
    assert revived.recovered == 2
    assert revived.detect("..", "../../etc")["n_violations"] >= 0


# -- corruption: quarantine, never a crash -------------------------------------


def test_torn_wal_tail_is_quarantined_and_server_keeps_serving(tmp_path):
    service = DetectionService(data_dir=tmp_path, fsync="always")
    service.create_session("t", "s", spec(base_rows()))
    for i in range(60, 66):
        service.update("t", "s", inserted=[[i, 44, "Z1", "X"]])
    before = resident_ids(service, "t", "s")
    # simulate a crash mid-append: garbage after the last valid record
    with open(wal_files(tmp_path)[0], "ab") as handle:
        handle.write(b"\x00\x00\x00\x20torn-by-a-crash")
    revived = DetectionService(data_dir=tmp_path, fsync="always")
    assert revived.recovered == 1
    stats = revived.stats()["durability"]
    assert stats["quarantined_tails"] == 1
    assert (tmp_path / ".quarantine").exists()
    assert resident_ids(revived, "t", "s") == before  # acked prefix intact
    # quarantine-not-crash: the session still serves and absorbs updates
    revived.update("t", "s", inserted=[[700, 44, "Z1", "Y"]])
    assert 700 in resident_ids(revived, "t", "s")


def test_bit_flip_corruption_is_caught_by_recovery_crc(tmp_path):
    service = DetectionService(data_dir=tmp_path, fsync="always")
    service.create_session("t", "s", spec(base_rows()))
    with fault_plan(FaultPlan.parse("bit-flip@1")):
        for i in range(60, 65):
            # silent corruption: every append is acknowledged
            service.update("t", "s", inserted=[[i, 44, "Z1", "X"]])
    revived = DetectionService(data_dir=tmp_path, fsync="always")
    assert revived.recovered == 1
    stats = revived.stats()["durability"]
    assert stats["quarantined_tails"] == 1
    assert stats["replayed_records"] == 1  # the record before the flip
    # the flipped record and everything after it are lost — that is the
    # cost of silent corruption — but the recovered prefix is consistent
    assert max(resident_ids(revived, "t", "s")) == 60
    assert revived.verify("t", "s")["ok"]


def test_torn_write_fault_keeps_later_acks_recoverable(tmp_path):
    service = DetectionService(data_dir=tmp_path, fsync="always")
    service.create_session("t", "s", spec(base_rows(4)))
    acked = [row[0] for row in base_rows(4)]
    with fault_plan(FaultPlan.parse("torn-write@2")):
        for i in range(10, 18):
            try:
                service.update("t", "s", inserted=[[i, 44, "Z1", "X"]])
                acked.append(i)
            except WALError:
                pass
    assert len(acked) == 4 + 7  # exactly one append failed
    revived = DetectionService(data_dir=tmp_path, fsync="always")
    # the repair truncated the torn frame, so every *later* acknowledged
    # record is recovered — nothing hides behind the failed append
    assert resident_ids(revived, "t", "s") == sorted(acked)
    assert revived.stats()["durability"].get("quarantined_tails", 0) == 0


def test_fsync_fail_fault_surfaces_typed_and_session_survives(tmp_path):
    service = DetectionService(data_dir=tmp_path, fsync="always")
    service.create_session("t", "s", spec(base_rows(4)))
    with fault_plan(FaultPlan.parse("fsync-fail@0")):
        with pytest.raises(WALError):
            service.update("t", "s", inserted=[[10, 44, "Z1", "X"]])
        service.update("t", "s", inserted=[[11, 44, "Z1", "Y"]])
    stats = service.stats()["durability"]
    assert stats["wal_errors"] == 1
    revived = DetectionService(data_dir=tmp_path, fsync="always")
    assert 11 in resident_ids(revived, "t", "s")
    assert 10 not in resident_ids(revived, "t", "s")  # unacked, not replayed


def test_garbage_snapshot_quarantines_that_session_only(tmp_path):
    service = DetectionService(data_dir=tmp_path, fsync="always")
    service.create_session("t", "good", spec(base_rows()))
    service.create_session("t", "bad", spec(base_rows()))
    victim = tmp_path / "t" / "bad" / "snapshot.json"
    victim.write_text('{"epoch": 2, "session": {"trunca')  # torn JSON
    revived = DetectionService(data_dir=tmp_path, fsync="always")
    assert revived.recovered == 1
    stats = revived.stats()["durability"]
    assert stats["quarantined_snapshots"] == 1
    assert revived.verify("t", "good")["ok"]
    with pytest.raises(Exception) as excinfo:
        revived.detect("t", "bad")
    assert "no session" in str(excinfo.value)


# -- typed snapshot errors (never bare KeyError/JSONDecodeError) ---------------


@pytest.mark.parametrize(
    "payload",
    [
        None,
        [],
        {},
        {"tenant": "t"},
        {"tenant": "t", "name": "s", "spec": {}, "fragments": "oops"},
        {"tenant": "t", "name": "s", "spec": {}, "fragments": ["oops"]},
        {"tenant": 7, "name": "s", "spec": {}, "fragments": []},
    ],
)
def test_from_snapshot_raises_typed_errors(payload):
    with pytest.raises(BadSnapshot):
        ManagedSession.from_snapshot(payload, queue_depth=4, coalesce=4)


def test_disk_store_load_snapshot_raises_typed_errors(tmp_path):
    store = DurableStore(tmp_path, fsync="off", checkpoint=100)
    with pytest.raises(BadSnapshot):
        store.load_snapshot("t", "missing")
    target = store.session_dir("t", "s")
    target.mkdir(parents=True)
    (target / "snapshot.json").write_text("{ not json")
    with pytest.raises(BadSnapshot):
        store.load_snapshot("t", "s")
    (target / "snapshot.json").write_text('{"session": {}}')  # no epoch
    with pytest.raises(BadSnapshot):
        store.load_snapshot("t", "s")


# -- the acceptance property: SIGKILL mid-stream over HTTP ---------------------


def _request(base: str, method: str, path: str, body=None):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(base + path, data=data, method=method)
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


def _start_server(data_dir: Path):
    src = Path(repro.__file__).resolve().parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "--port", "0",
            "--data-dir", str(data_dir), "--fsync", "always",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    line = process.stdout.readline()
    assert "listening on" in line, line
    address = line.split("http://", 1)[1].split()[0].rstrip(")")
    return process, f"http://{address}"


def test_sigkill_mid_stream_recovers_acknowledged_prefix(tmp_path):
    """Kill -9 a real server mid-update-stream; restart must serve the
    serial replay of everything acknowledged (± the one in-flight
    request the kill interrupted)."""
    rows = base_rows(20)
    process, base = _start_server(tmp_path)
    try:
        _request(base, "POST", "/v1/acme/sessions/cust", spec(rows))
        acked = [row[0] for row in rows]
        in_flight: list[int] = []
        killed = threading.Event()

        def killer():
            time.sleep(0.35)
            process.send_signal(signal.SIGKILL)
            killed.set()

        threading.Thread(target=killer, daemon=True).start()
        i = 1000
        while not killed.is_set() and i < 1400:
            in_flight.append(i)
            try:
                _request(
                    base, "POST", "/v1/acme/sessions/cust/update",
                    {"inserted": [[i, 44, f"Z{i % 5}", f"S{i % 3}"]]},
                )
                acked.append(i)
            except (urllib.error.URLError, ConnectionError, OSError):
                break
            in_flight.clear()
            i += 1
        process.wait(timeout=10)
    finally:
        if process.poll() is None:  # pragma: no cover - cleanup
            process.kill()
    assert len(acked) > len(rows), "no updates were acknowledged before kill"

    revived = DetectionService(data_dir=tmp_path, fsync="always")
    assert revived.recovered == 1
    recovered = resident_ids(revived, "acme", "cust")
    # every acknowledged update survived the kill...
    assert set(acked) <= set(recovered)
    # ...and nothing beyond the single possibly-in-flight request exists
    assert set(recovered) <= set(acked) | set(in_flight)
    replayed_rows = [
        row
        for rows_ in revived.snapshot("acme", "cust")["fragments"]
        for row in rows_
    ]
    assert served_violations(revived, "acme", "cust") == as_comparable(
        oracle(replayed_rows)
    )
    assert revived.verify("acme", "cust")["ok"]
