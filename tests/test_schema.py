"""Unit tests for repro.relational.schema."""

import pytest

from repro.relational import Schema, SchemaError


def test_positions_follow_declaration_order():
    schema = Schema("R", ["a", "b", "c"])
    assert schema.position("a") == 0
    assert schema.position("c") == 2
    assert schema.positions(["c", "a"]) == (2, 0)


def test_default_key_is_first_attribute():
    schema = Schema("R", ["id", "x"])
    assert schema.key == ("id",)
    assert schema.key_positions() == (0,)


def test_explicit_composite_key():
    schema = Schema("R", ["a", "b", "c"], key=["b", "c"])
    assert schema.key_positions() == (1, 2)


def test_unknown_attribute_raises():
    schema = Schema("R", ["a"])
    with pytest.raises(SchemaError):
        schema.position("nope")
    with pytest.raises(SchemaError):
        schema.positions(["a", "nope"])


def test_positions_are_memoized():
    schema = Schema("R", ["a", "b", "c"])
    first = schema.positions(["c", "a"])
    assert schema.positions(["c", "a"]) is first  # cached tuple, one probe
    assert schema.positions(("c", "a")) is first  # list/tuple spell the same key


def test_duplicate_attributes_rejected():
    with pytest.raises(SchemaError):
        Schema("R", ["a", "a"])


def test_empty_schema_rejected():
    with pytest.raises(SchemaError):
        Schema("R", [])


def test_key_must_be_subset_of_attributes():
    with pytest.raises(SchemaError):
        Schema("R", ["a"], key=["b"])


def test_contains():
    schema = Schema("R", ["a", "b"])
    assert "a" in schema
    assert "z" not in schema


def test_project_keeps_key_when_retained():
    schema = Schema("R", ["id", "x", "y"], key=["id"])
    projected = schema.project(["id", "y"])
    assert projected.attributes == ("id", "y")
    assert projected.key == ("id",)


def test_project_without_key_degrades_to_all_attributes():
    schema = Schema("R", ["id", "x", "y"], key=["id"])
    projected = schema.project(["x", "y"])
    assert projected.key == ("x", "y")


def test_project_validates_attributes():
    schema = Schema("R", ["a"])
    with pytest.raises(SchemaError):
        schema.project(["a", "zz"])


def test_equality_and_hash():
    a = Schema("R", ["x", "y"], key=["x"])
    b = Schema("R", ["x", "y"], key=["x"])
    c = Schema("R", ["x", "y"], key=["y"])
    assert a == b
    assert hash(a) == hash(b)
    assert a != c


def test_len():
    assert len(Schema("R", ["a", "b", "c"])) == 3
