"""Unit tests for CFD normal forms and the σ pattern index."""

from repro.core import (
    CFD,
    PatternIndex,
    PatternTuple,
    WILDCARD,
    detect_violations,
    normalize,
    parse_cfd,
    sort_patterns_by_generality,
)
from repro.relational import Relation, Schema


def test_constant_cfd_extraction_drops_lhs_wildcards():
    # Example 3: φ3 is equivalent to two constant CFDs ψ1 and ψ2.
    phi3 = parse_cfd(
        "([CC, AC] -> [city]) with (44, 131 || 'EDI'), (1, 908 || 'MH')"
    )
    normalized = normalize(phi3)
    assert len(normalized.constants) == 2
    assert not normalized.variables
    psi1, psi2 = normalized.constants
    assert psi1.values == (44, 131) and psi1.rhs_value == "EDI"
    assert psi2.values == (1, 908) and psi2.rhs_value == "MH"


def test_variable_cfd_keeps_tableau():
    phi1 = parse_cfd("([CC, zip] -> [street]) with (44, _ || _), (31, _ || _)")
    normalized = normalize(phi1)
    assert not normalized.constants
    (variable,) = normalized.variables
    assert variable.patterns == ((44, WILDCARD), (31, WILDCARD))


def test_wildcard_lhs_entries_dropped_in_constant_form():
    cfd = parse_cfd("([a, b] -> [c]) with (_, 5 || 'k')")
    (constant,) = normalize(cfd).constants
    assert constant.lhs == ("b",)
    assert constant.values == (5,)
    assert constant.report_lhs == ("a", "b")


def test_mixed_row_splits_into_constant_and_variable():
    cfd = CFD(
        ["a"],
        ["b", "c"],
        [PatternTuple((1,), ("x", WILDCARD))],
    )
    normalized = normalize(cfd)
    assert len(normalized.constants) == 1
    assert normalized.constants[0].rhs_attr == "b"
    (variable,) = normalized.variables
    assert variable.rhs == ("c",)


def test_patterns_sorted_by_generality():
    rows = [
        (WILDCARD, WILDCARD),
        (1, WILDCARD),
        (1, 2),
    ]
    ordered = sort_patterns_by_generality(rows)
    wildcards = [sum(1 for v in row if v is WILDCARD) for row in ordered]
    assert wildcards == sorted(wildcards)
    assert ordered[0] == (1, 2)


def test_duplicate_lhs_rows_deduplicated():
    cfd = parse_cfd("([a] -> [b]) with (1 || _), (1 || _), (2 || _)")
    (variable,) = normalize(cfd).variables
    assert variable.patterns == ((1,), (2,))


def test_normalization_preserves_violations():
    """Union of violations of the normal forms == violations of the original."""
    schema = Schema("R", ["id", "a", "b", "c"], key=["id"])
    relation = Relation(
        schema,
        [
            (1, 1, "x", "p"),
            (2, 1, "x", "q"),  # conflicts with t1 on c for a=1
            (3, 2, "y", "p"),  # wrong constant b for a=2
            (4, 3, "z", "p"),
        ],
    )
    cfd = CFD(
        ["a"],
        ["b", "c"],
        [
            PatternTuple((1,), (WILDCARD, WILDCARD)),
            PatternTuple((2,), ("w", WILDCARD)),
        ],
    )
    report = detect_violations(relation, cfd)
    violated_lhs = {v.lhs_values for v in report.violations}
    assert violated_lhs == {(1,), (2,)}
    assert {k[0] for k in report.tuple_keys} == {1, 2, 3}


def test_variable_cfd_as_cfd_roundtrip():
    phi1 = parse_cfd("([CC, zip] -> [street]) with (44, _ || _), (31, _ || _)")
    (variable,) = normalize(phi1).variables
    rebuilt = variable.as_cfd()
    assert normalize(rebuilt).variables[0].patterns == variable.patterns


# -- PatternIndex -------------------------------------------------------------


def test_pattern_index_first_match_prefers_specific():
    patterns = [(44, "Z"), (44, WILDCARD), (WILDCARD, WILDCARD)]
    index = PatternIndex(patterns)
    assert index.first_match((44, "Z")) == 0
    assert index.first_match((44, "Q")) == 1
    assert index.first_match((31, "Q")) == 2


def test_pattern_index_no_match():
    index = PatternIndex([(44,), (31,)])
    assert index.first_match((7,)) is None
    assert not index.matches_any((7,))


def test_pattern_index_duplicate_mask_keeps_first():
    index = PatternIndex([(44,), (44,)])
    assert index.first_match((44,)) == 0


def test_pattern_index_zero_width():
    index = PatternIndex([()])
    assert index.first_match(()) == 0


def test_pattern_index_scales_past_tableau_size():
    patterns = [(i, WILDCARD) for i in range(500)] + [(WILDCARD, WILDCARD)]
    index = PatternIndex(patterns)
    assert index.first_match((499, "x")) == 499
    assert index.first_match((1000, "x")) == 500


# -- memo eviction (LRU, not wholesale clearing) ------------------------------


def _mint_cfd(i):
    return CFD(("a",), ("b",), [PatternTuple((i,), (WILDCARD,))], name=f"m{i}")


def test_normalize_memo_evicts_oldest_first_not_wholesale():
    from repro.core import normalize as normalize_module_func
    from repro.core.normalize import _NORMALIZE_MEMO, _NORMALIZE_MEMO_CAP

    _NORMALIZE_MEMO.clear()
    minted = [_mint_cfd(i) for i in range(_NORMALIZE_MEMO_CAP)]
    for cfd in minted:
        normalize(cfd)
    assert len(_NORMALIZE_MEMO) == _NORMALIZE_MEMO_CAP
    # one more insert evicts exactly the oldest entry, never the lot
    normalize(_mint_cfd(_NORMALIZE_MEMO_CAP))
    assert len(_NORMALIZE_MEMO) == _NORMALIZE_MEMO_CAP
    assert ("m0", minted[0]) not in _NORMALIZE_MEMO
    assert ("m1", minted[1]) in _NORMALIZE_MEMO


def test_normalize_memo_hit_refreshes_lru_position():
    from repro.core.normalize import _NORMALIZE_MEMO, _NORMALIZE_MEMO_CAP

    _NORMALIZE_MEMO.clear()
    minted = [_mint_cfd(i) for i in range(_NORMALIZE_MEMO_CAP)]
    for cfd in minted:
        normalize(cfd)
    normalize(minted[0])  # hit: m0 moves to the young end
    normalize(_mint_cfd(_NORMALIZE_MEMO_CAP))  # evicts m1, not m0
    assert ("m0", minted[0]) in _NORMALIZE_MEMO
    assert ("m1", minted[1]) not in _NORMALIZE_MEMO


def test_pattern_index_memo_evicts_oldest_first():
    from repro.core import pattern_index
    from repro.core.normalize import _INDEX_MEMO, _INDEX_MEMO_CAP

    _INDEX_MEMO.clear()
    tableaux = [((i, WILDCARD),) for i in range(_INDEX_MEMO_CAP + 1)]
    kept = [pattern_index(t) for t in tableaux]
    assert len(_INDEX_MEMO) == _INDEX_MEMO_CAP
    assert tableaux[0] not in _INDEX_MEMO
    assert tableaux[1] in _INDEX_MEMO
    # hits return the cached instance
    assert pattern_index(tableaux[-1]) is kept[-1]
