"""TPC-H workload ground truth: manifest counts == detected counts.

The generator's contract is *exact*: the injection manifest records, per
table and CFD family, how many ``Vioπ`` entries and violating tuples the
corruption created, and every engine — reference, fused, fused-numpy and
sql — must detect exactly those numbers, at multiple seeds and scale
factors.  Also covers: clean-by-construction tables, deterministic
regeneration, and the CSV/manifest writer behind ``repro datagen tpch``.
"""

import json

import pytest

from repro.core import (
    SQLEngineError,
    close_sql_handles,
    detect_violations,
    detect_violations_sql,
    duckdb_enabled,
)
from repro.datagen import (
    TPCH_SCHEMAS,
    TPCH_TABLES,
    build_tpch,
    generate_tpch,
    inject_violations,
    tpch_cfds,
    tpch_rows,
    write_tpch,
)
from repro.relational import load_csv, numpy_enabled

#: two seeds x two scale factors (the acceptance criterion); ratio high
#: enough that most families inject more than one group
CASES = [(0.002, 11), (0.005, 7)]
RATIO = 0.1


def engines():
    names = ["reference", "fused"]
    if numpy_enabled():
        names.append("fused-numpy")
    names.append("sql")
    return names


@pytest.fixture(scope="module", params=CASES, ids=lambda c: f"sf{c[0]}-seed{c[1]}")
def workload(request):
    scale_factor, seed = request.param
    clean = build_tpch(scale_factor, seed=seed)
    dirty, manifest = inject_violations(clean, ratio=RATIO, seed=seed)
    yield clean, dirty, manifest
    close_sql_handles()


def test_clean_by_construction(workload):
    clean, _dirty, _manifest = workload
    for table, family in tpch_cfds().items():
        report = detect_violations(clean[table], family, engine="reference")
        assert report.is_clean(), (table, report.violations)


def test_schema_shape(workload):
    clean, _dirty, manifest = workload
    assert set(clean) == set(TPCH_TABLES) == set(TPCH_SCHEMAS)
    for table in TPCH_TABLES:
        assert len(clean[table].rows) == manifest["tables"][table]["rows"]


def test_manifest_counts_match_detection_on_every_engine(workload):
    _clean, dirty, manifest = workload
    checked = 0
    for table, family in tpch_cfds().items():
        for cfd in family:
            expected = manifest["tables"][table]["families"][cfd.name]
            for engine in engines():
                report = detect_violations(dirty[table], cfd, engine=engine)
                assert len(report.for_cfd(cfd.name)) == (
                    expected["expected_violations"]
                ), (table, cfd.name, engine)
                assert len(report.tuple_keys) == (
                    expected["expected_violating_tuples"]
                ), (table, cfd.name, engine)
                checked += 1
    assert checked >= 10 * len(engines())  # 10 families, every engine


@pytest.mark.skipif(not duckdb_enabled(), reason="duckdb not importable")
def test_manifest_counts_match_duckdb_backend(workload):
    _clean, dirty, manifest = workload
    for table, family in tpch_cfds().items():
        for cfd in family:
            expected = manifest["tables"][table]["families"][cfd.name]
            try:
                report = detect_violations_sql(
                    dirty[table], cfd, backend="duckdb"
                )
            except SQLEngineError:
                pytest.fail(f"{table} should be duckdb-typeable")
            assert len(report.for_cfd(cfd.name)) == (
                expected["expected_violations"]
            ), (table, cfd.name)


def test_some_family_actually_fires(workload):
    _clean, _dirty, manifest = workload
    totals = [
        stats["expected_violations"]
        for entry in manifest["tables"].values()
        for stats in entry["families"].values()
    ]
    assert sum(totals) >= 8  # the workload is not trivially clean


def test_generation_is_deterministic():
    scale_factor, seed = CASES[0]
    first_tables, first_manifest = generate_tpch(scale_factor, seed, RATIO)
    second_tables, second_manifest = generate_tpch(scale_factor, seed, RATIO)
    assert first_manifest == second_manifest
    for table in TPCH_TABLES:
        assert first_tables[table].rows == second_tables[table].rows


def test_injection_leaves_input_untouched():
    clean = build_tpch(0.002, seed=3)
    snapshot = {table: tuple(clean[table].rows) for table in TPCH_TABLES}
    inject_violations(clean, ratio=RATIO, seed=3)
    for table in TPCH_TABLES:
        assert tuple(clean[table].rows) == snapshot[table]


def test_tpch_rows_scaling_and_floors():
    tiny = tpch_rows(0.0001)
    assert tiny["region"] == 5 and tiny["nation"] == 25
    assert tiny["supplier"] == 10  # floor
    sf1 = tpch_rows(1.0)
    assert sf1["lineitem"] == 6_000_000 and sf1["orders"] == 1_500_000


def test_write_tpch_round_trips(tmp_path):
    manifest = write_tpch(tmp_path, scale_factor=0.001, seed=5, ratio=RATIO)
    on_disk = json.loads((tmp_path / "manifest.json").read_text())
    assert on_disk == manifest
    for table in TPCH_TABLES:
        path = tmp_path / f"{table}.csv"
        assert path.exists()
    nation = load_csv(
        tmp_path / "nation.csv",
        key=("n_nationkey",),
        converters={"n_nationkey": int, "n_regionkey": int},
    )
    assert len(nation.rows) == manifest["tables"]["nation"]["rows"]
    # the injected violation survives the CSV round trip
    cfd = next(
        c for c in tpch_cfds()["nation"] if c.name == "nation_region"
    )
    report = detect_violations(nation, cfd, engine="sql")
    expected = manifest["tables"]["nation"]["families"]["nation_region"]
    assert len(report.for_cfd(cfd.name)) == expected["expected_violations"]
