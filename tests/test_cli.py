"""Tests for the command-line interface and CSV io."""

import os

import pytest

from repro.cli import main
from repro.datagen import emp_instance
from repro.relational import Relation, Schema, infer_column_types, load_csv, save_csv


@pytest.fixture()
def emp_csv(tmp_path):
    path = tmp_path / "emp.csv"
    save_csv(emp_instance(), path)
    return str(path)


# -- CSV io -------------------------------------------------------------------


def test_csv_roundtrip(tmp_path):
    original = emp_instance()
    path = tmp_path / "emp.csv"
    save_csv(original, path)
    loaded = infer_column_types(
        load_csv(path, name="EMP", key=["id"])
    )
    assert loaded.schema.attributes == original.schema.attributes
    assert loaded.rows == original.rows  # numeric columns restored


def test_load_csv_with_converters(tmp_path):
    path = tmp_path / "r.csv"
    path.write_text("id,v\n1,2.5\n2,3.5\n")
    loaded = load_csv(path, converters={"id": int, "v": float})
    assert loaded.rows == [(1, 2.5), (2, 3.5)]


def test_infer_column_types_mixed_column_stays_text():
    schema = Schema("R", ["a", "b"], key=["a"])
    relation = Relation(schema, [("1", "x"), ("2", "3")])
    inferred = infer_column_types(relation)
    assert inferred.rows == [(1, "x"), (2, "3")]  # only column a converts


def test_infer_column_types_float():
    schema = Schema("R", ["a"], key=["a"])
    relation = Relation(schema, [("1.5",), ("2",)])
    assert infer_column_types(relation).rows == [(1.5,), (2.0,)]


# -- check --------------------------------------------------------------------


def test_cli_check_reports_violations(emp_csv, capsys):
    code = main(["check", "--data", emp_csv, "--cfd", "([CC=44, zip] -> [street])"])
    output = capsys.readouterr().out
    assert code == 1
    assert "1 violating pattern" in output
    assert "(2,)" in output  # t2 among the violating keys


def test_cli_check_clean_exits_zero(emp_csv, capsys):
    code = main(["check", "--data", emp_csv, "--cfd", "([CC, title] -> [salary])"])
    assert code == 0
    assert "no violations" in capsys.readouterr().out


# -- detect -------------------------------------------------------------------


@pytest.mark.parametrize(
    "algorithm", ["ctr", "pat-s", "pat-rt", "seq", "clust", "naive"]
)
def test_cli_detect_all_algorithms(emp_csv, capsys, algorithm):
    code = main(
        [
            "detect",
            "--data", emp_csv,
            "--cfd", "([CC=44, zip] -> [street])",
            "--cfd", "([CC=31, zip] -> [street])",
            "--sites", "3",
            "--algorithm", algorithm,
        ]
    )
    output = capsys.readouterr().out
    assert code == 1
    assert "tuples shipped" in output


def test_cli_detect_partition_by_attribute(emp_csv, capsys):
    code = main(
        [
            "detect",
            "--data", emp_csv,
            "--cfd", "([CC=44, zip] -> [street])",
            "--partition-by", "title",
            "--algorithm", "pat-s",
        ]
    )
    output = capsys.readouterr().out
    assert code == 1
    assert "Cluster(3 sites" in output


# -- sql ------------------------------------------------------------------------


def test_cli_sql(capsys):
    code = main(["sql", "--cfd", "([a=1] -> [b='x'])", "--table", "T"])
    output = capsys.readouterr().out
    assert code == 0
    assert 'FROM "T"' in output and "NOT (" in output


# -- figures ----------------------------------------------------------------------


def test_cli_figures_subset(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.002")
    code = main(["figures", "--only", "fig3d", "--out", str(tmp_path)])
    output = capsys.readouterr().out
    assert code == 0
    assert "fig3d" in output
    assert (tmp_path / "fig3d.txt").exists()


def test_cli_figures_unknown(capsys):
    code = main(["figures", "--only", "fig9z"])
    assert code == 2
    assert "unknown figures" in capsys.readouterr().err


# -- --engine / REPRO_SQL_BACKEND ---------------------------------------------


def test_cli_check_engine_sql(emp_csv, capsys):
    code = main([
        "check", "--data", emp_csv, "--engine", "sql",
        "--cfd", "([CC=44, zip] -> [street])",
    ])
    output = capsys.readouterr().out
    assert code == 1
    assert "1 violating pattern" in output
    assert "(2,)" in output  # same keys as the reference engine
    assert os.environ.get("REPRO_ENGINE") is None  # override was scoped


def test_cli_detect_engine_sql(emp_csv, capsys):
    code = main([
        "detect", "--data", emp_csv, "--sites", "2", "--engine", "sql",
        "--cfd", "([CC=44, zip] -> [street])",
    ])
    output = capsys.readouterr().out
    assert code == 1
    assert "violating pattern" in output
    assert os.environ.get("REPRO_ENGINE") is None


def test_cli_engine_flag_restores_previous_value(emp_csv, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "fused")
    main([
        "check", "--data", emp_csv, "--engine", "reference",
        "--cfd", "([CC, title] -> [salary])",
    ])
    capsys.readouterr()
    assert os.environ["REPRO_ENGINE"] == "fused"


def test_cli_unknown_engine_env_exits_2(emp_csv, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "turbo")
    code = main(["check", "--data", emp_csv, "--cfd", "([a] -> [b])"])
    assert code == 2
    assert "unknown REPRO_ENGINE" in capsys.readouterr().err


def test_cli_unknown_sql_backend_exits_2(emp_csv, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SQL_BACKEND", "bogus")
    code = main(["check", "--data", emp_csv, "--cfd", "([a] -> [b])"])
    assert code == 2
    assert "unknown SQL backend" in capsys.readouterr().err


def test_cli_duckdb_backend_without_package_exits_2(capsys, monkeypatch):
    from repro.core import duckdb_enabled

    if duckdb_enabled():
        pytest.skip("duckdb importable; the missing-package path is moot")
    monkeypatch.setenv("REPRO_SQL_BACKEND", "duckdb")
    code = main(["sql", "--cfd", "([a] -> [b])"])
    assert code == 2
    assert "duckdb" in capsys.readouterr().err


# -- datagen ------------------------------------------------------------------


def test_cli_datagen_tpch_writes_manifest_and_csvs(tmp_path, capsys):
    out = tmp_path / "tp"
    code = main([
        "datagen", "tpch", "--sf", "0.001", "--seed", "5",
        "--ratio", "0.05", "--out", str(out),
    ])
    output = capsys.readouterr().out
    assert code == 0
    assert "8 tables" in output
    assert "manifest.json" in output
    assert (out / "manifest.json").exists()
    assert (out / "lineitem.csv").exists()

    # the generated workload closes the loop through check --engine sql:
    # the injected nation violation is detected from the CSV on disk
    code = main([
        "check", "--data", str(out / "nation.csv"), "--engine", "sql",
        "--key", "n_nationkey", "--cfd", "([n_regionkey] -> [n_region])",
    ])
    capsys.readouterr()
    import json

    manifest = json.loads((out / "manifest.json").read_text())
    expected = manifest["tables"]["nation"]["families"]["nation_region"]
    assert (code == 1) == (expected["expected_violations"] > 0)
