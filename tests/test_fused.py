"""The fused columnar detector must match the reference oracle bit-for-bit.

Property-based equivalence on random relations and random CFD sets
(including eCFD predicate entries), checked on the whole relation and on
every fragment of both horizontal partition kinds — on violations *and*
collected tuple keys — plus direct unit tests of the columnar cache reuse
path and the engine dispatcher.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core import (
    CFD,
    FusedDetector,
    NotValue,
    OneOf,
    PatternTuple,
    WILDCARD,
    detect_violations,
    detect_violations_reference,
    fused_detect,
)
from repro.partition import partition_by_attribute, partition_uniform
from repro.relational import HashIndex, Relation, Schema, column_store

ATTRS = ("a", "b", "c", "d")
SCHEMA = Schema("R", ("id",) + ATTRS, key=("id",))
VALUES = [0, 1, 2]

rows = st.lists(
    st.tuples(*[st.sampled_from(VALUES) for _ in ATTRS]),
    min_size=0,
    max_size=24,
)


@st.composite
def relations(draw):
    body = draw(rows)
    return Relation(SCHEMA, [(i,) + r for i, r in enumerate(body)])


@st.composite
def pattern_entries(draw):
    kind = draw(st.integers(0, 5))
    if kind == 0:
        return WILDCARD
    if kind == 1:
        return OneOf(draw(st.sets(st.sampled_from(VALUES), min_size=1, max_size=2)))
    if kind == 2:
        return NotValue(draw(st.sampled_from(VALUES)))
    return draw(st.sampled_from(VALUES))


@st.composite
def cfds(draw):
    lhs_size = draw(st.integers(1, 3))
    attrs = draw(st.permutations(ATTRS).map(lambda p: list(p[: lhs_size + 1])))
    lhs, rhs = attrs[:-1], [attrs[-1]]
    n_patterns = draw(st.integers(1, 3))
    tableau = [
        PatternTuple(
            [draw(pattern_entries()) for _ in lhs],
            [draw(pattern_entries()) for _ in rhs],
        )
        for _ in range(n_patterns)
    ]
    return CFD(lhs, rhs, tableau, name=f"cfd{draw(st.integers(0, 10 ** 6))}")


SETTINGS = settings(max_examples=100, deadline=None)


def assert_equivalent(relation, sigma):
    expected = detect_violations_reference(relation, sigma, collect_tuples=True)
    fused = fused_detect(relation, sigma, collect_tuples=True)
    assert fused.violations == expected.violations
    assert fused.tuple_keys == expected.tuple_keys


@SETTINGS
@given(relations(), st.lists(cfds(), min_size=1, max_size=3))
def test_fused_equals_reference_centralized(relation, sigma):
    assert_equivalent(relation, sigma)


@SETTINGS
@given(relations(), st.lists(cfds(), min_size=1, max_size=3), st.integers(1, 4))
def test_fused_equals_reference_on_uniform_fragments(relation, sigma, n_sites):
    for site in partition_uniform(relation, n_sites).sites:
        assert_equivalent(site.fragment, sigma)


@SETTINGS
@given(relations(), st.lists(cfds(), min_size=1, max_size=3))
def test_fused_equals_reference_on_attribute_fragments(relation, sigma):
    for site in partition_by_attribute(relation, "a").sites:
        assert_equivalent(site.fragment, sigma)


@SETTINGS
@given(relations(), st.lists(cfds(), min_size=1, max_size=3))
def test_detector_instance_is_reusable(relation, sigma):
    detector = FusedDetector(sigma)
    first = detector.detect(relation)
    second = detector.detect(relation)  # warm columnar cache
    assert first.violations == second.violations
    assert first.tuple_keys == second.tuple_keys


# -- unit tests ---------------------------------------------------------------


def small_relation():
    return Relation(
        SCHEMA,
        [
            (0, 1, 1, 0, 0),
            (1, 1, 1, 0, 1),  # conflicts with row 0 on d given (a, b)
            (2, 2, 0, 1, 2),
            (3, 2, 0, 1, 2),
        ],
    )


def test_fused_variable_cfd_reports_keys():
    relation = small_relation()
    cfd = CFD(["a", "b"], ["d"], name="phi")
    report = fused_detect(relation, cfd)
    expected = detect_violations_reference(relation, cfd)
    assert report.violations == expected.violations
    assert report.tuple_keys == expected.tuple_keys == {(0,), (1,)}


def test_fused_constant_cfd_with_absent_constant_matches_nothing():
    relation = small_relation()
    cfd = CFD(["a"], ["b"], [PatternTuple((99,), (5,))], name="phi")
    assert fused_detect(relation, cfd).is_clean()
    assert detect_violations_reference(relation, cfd).is_clean()


def test_fused_predicate_entries():
    relation = small_relation()
    cfd = CFD(
        ["a"],
        ["c"],
        [PatternTuple((OneOf({1, 2}),), (NotValue(1),))],
        name="phi",
    )
    expected = detect_violations_reference(relation, cfd)
    fused = fused_detect(relation, cfd)
    assert fused.violations == expected.violations
    assert fused.tuple_keys == expected.tuple_keys


def test_fused_empty_relation():
    relation = Relation(SCHEMA, [])
    cfd = CFD(["a"], ["b"], name="phi")
    assert fused_detect(relation, cfd).is_clean()


def test_dispatcher_selects_engines(monkeypatch):
    relation = small_relation()
    cfd = CFD(["a", "b"], ["d"], name="phi")
    fused = detect_violations(relation, cfd, engine="fused")
    reference = detect_violations(relation, cfd, engine="reference")
    auto = detect_violations(relation, cfd, engine="auto")
    assert fused.violations == reference.violations == auto.violations
    with pytest.raises(ValueError):
        detect_violations(relation, cfd, engine="no-such-engine")
    monkeypatch.setenv("REPRO_ENGINE", "reference")
    via_env = detect_violations(relation, cfd)
    assert via_env.violations == reference.violations


def test_dispatcher_fused_numpy_engine(monkeypatch):
    from repro.relational import numpy_enabled

    relation = small_relation()
    cfd = CFD(["a", "b"], ["d"], name="phi")
    reference = detect_violations(relation, cfd, engine="reference")
    if numpy_enabled():
        vectorized = detect_violations(relation, cfd, engine="fused-numpy")
        assert vectorized.violations == reference.violations
        assert vectorized.tuple_keys == reference.tuple_keys
        monkeypatch.setenv("REPRO_ENGINE", "fused-numpy")
        via_env = detect_violations(relation, cfd)
        assert via_env.violations == reference.violations
    else:
        with pytest.raises(RuntimeError):
            detect_violations(relation, cfd, engine="fused-numpy")


# -- cached columnar index reuse ----------------------------------------------


def test_column_store_is_cached_on_the_relation():
    relation = small_relation()
    store = column_store(relation)
    assert column_store(relation) is store
    assert store.column("a") is store.column("a")
    assert store.key_column(("a", "b")) is store.key_column(("a", "b"))
    assert store.group_index(("a",)) is store.group_index(("a",))


def test_hash_index_reuses_the_cached_group_index():
    relation = small_relation()
    first = HashIndex(relation, ["a", "b"])
    store = column_store(relation)
    assert ("a", "b") in store._group_indexes  # built by the first index
    second = HashIndex(relation, ["a", "b"])
    for key in store.group_index(("a", "b")):
        assert first.lookup(key) == second.lookup(key)
    # and the buckets agree with a brute-force grouping
    for key, bucket in relation.group_by(["a", "b"]).items():
        assert first.lookup(key) == bucket


def test_single_attribute_key_column_shares_codes():
    relation = small_relation()
    store = column_store(relation)
    column = store.column("a")
    key = store.key_column(("a",))
    assert key.codes is column.codes  # no re-encoding for 1-attribute keys
    assert key.values == [(v,) for v in column.values]


def test_group_index_matches_group_by_row_ids():
    relation = small_relation()
    index = column_store(relation).group_index(("c",))
    for key, ids in index.items():
        assert [relation.rows[i] for i in ids] == relation.group_by(["c"])[key]
