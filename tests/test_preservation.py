"""Tests for dependency preservation (Prop. 7) and minimum refinement (Thm. 8)."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core import detect_violations, parse_cfd, satisfies
from repro.datagen import (
    emp_instance,
    emp_tableau_cfds,
    emp_vertical_attribute_sets,
)
from repro.partition import (
    VerticalPartition,
    augmentation_size,
    greedy_refinement,
    is_dependency_preserving,
    minimum_refinement,
    preservation_counterexample,
    unpreserved_cfds,
)
from repro.relational import Schema

S = Schema("R", ["id", "a", "b", "c", "d"], key=["id"])


def vp(*fragment_attrs):
    return VerticalPartition(S, list(fragment_attrs))


# -- classical FD cases (Ullman's examples translate directly) -----------------


def test_covering_fragment_preserves():
    sigma = [parse_cfd("([a] -> [b])")]
    assert is_dependency_preserving(vp(["a", "b"], ["c", "d"]), sigma)


def test_split_fd_not_preserved():
    sigma = [parse_cfd("([a] -> [b])")]
    assert not is_dependency_preserving(vp(["a", "c"], ["b", "d"]), sigma)


def test_transitive_closure_preserves_indirectly():
    # Classic: R(a,b,c), a->b, b->c, partition {a,b}, {b,c}.
    # a->c is not local anywhere but follows from the locally checkable FDs.
    sigma = [
        parse_cfd("([a] -> [b])"),
        parse_cfd("([b] -> [c])"),
        parse_cfd("([a] -> [c])"),
    ]
    partition = vp(["a", "b"], ["b", "c"], ["d"])
    assert is_dependency_preserving(partition, sigma)


def test_transitive_closure_breaks_without_middleman():
    sigma = [
        parse_cfd("([a] -> [b])"),
        parse_cfd("([b] -> [c])"),
        parse_cfd("([a] -> [c])"),
    ]
    partition = vp(["a", "b"], ["c", "d"])
    failing = unpreserved_cfds(partition, sigma)
    assert [cfd.name for cfd in failing] == ["[b]->[c]", "[a]->[c]"]


def test_constant_cfd_needs_its_fragment():
    sigma = [parse_cfd("([a=1] -> [b='x'])")]
    assert is_dependency_preserving(vp(["a", "b"], ["c", "d"]), sigma)
    assert not is_dependency_preserving(vp(["a", "c"], ["b", "d"]), sigma)


def test_constant_chain_preserved_across_fragments():
    sigma = [
        parse_cfd("([a=1] -> [b='x'])"),
        parse_cfd("([b='x'] -> [c='y'])"),
        parse_cfd("([a=1] -> [c='y'])"),
    ]
    # a=1 -> b='x' local in F1; b='x' -> c='y' local in F2; the chain implies
    # the third CFD, so the partition preserves it.
    partition = vp(["a", "b"], ["b", "c"], ["d"])
    assert is_dependency_preserving(partition, sigma)


# -- Proposition 7 as a property -----------------------------------------------


def test_counterexample_instance_demonstrates_prop7():
    sigma = [parse_cfd("([a] -> [b])")]
    partition = vp(["a", "c"], ["b", "d"])
    found = preservation_counterexample(partition, sigma)
    assert found is not None
    phi, instance = found
    assert not satisfies(instance, phi)  # global violation ...
    cluster = partition.deploy(instance)
    for site in cluster.sites:
        local = [
            s for s in sigma
            if all(a in site.fragment.schema for a in s.attributes)
        ]
        for cfd in local:  # ... invisible at every site
            assert satisfies(site.fragment, cfd)


def test_counterexample_none_for_preserving_partition():
    sigma = [parse_cfd("([a] -> [b])")]
    assert preservation_counterexample(vp(["a", "b"], ["c", "d"]), sigma) is None


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.sampled_from(
            [
                "([a] -> [b])",
                "([b] -> [c])",
                "([a] -> [c])",
                "([a, b] -> [d])",
                "([a=1] -> [b='x'])",
                "([b='x'] -> [d='z'])",
            ]
        ),
        min_size=1,
        max_size=3,
        unique=True,
    ),
    st.sampled_from(
        [
            (("a", "b"), ("c", "d")),
            (("a", "b"), ("b", "c"), ("d",)),
            (("a", "c"), ("b", "d")),
            (("a", "b", "c", "d"),),
            (("a",), ("b",), ("c",), ("d",)),
        ]
    ),
)
def test_prop7_local_checks_complete_iff_preserving(texts, fragments):
    """If preserving: local violation union == global violations on the
    counterexample-prone two-tuple instances; if not: the produced
    counterexample separates them."""
    sigma = [parse_cfd(text) for text in texts]
    partition = VerticalPartition(S, list(fragments))
    found = preservation_counterexample(partition, sigma)
    if found is None:
        return  # preserving; nothing to separate
    phi, instance = found
    assert detect_violations(instance, phi)
    cluster = partition.deploy(instance)
    for site in cluster.sites:
        local = [
            s for s in sigma
            if all(a in site.fragment.schema for a in s.attributes)
        ]
        if local:
            assert not detect_violations(site.fragment, local)


# -- refinement ----------------------------------------------------------------


def test_refinement_already_preserving_is_empty():
    sigma = [parse_cfd("([a] -> [b])")]
    assert minimum_refinement(vp(["a", "b"], ["c", "d"]), sigma) == {}


def test_refinement_single_missing_attribute():
    sigma = [parse_cfd("([a] -> [b])")]
    partition = vp(["a", "c"], ["b", "d"])
    augmentation = minimum_refinement(partition, sigma)
    assert augmentation_size(augmentation) == 1
    assert is_dependency_preserving(partition.refine(augmentation), sigma)


def test_greedy_refinement_is_preserving():
    sigma = [
        parse_cfd("([a] -> [b])"),
        parse_cfd("([c] -> [d])"),
    ]
    partition = vp(["a", "c"], ["b", "d"])
    augmentation = greedy_refinement(partition, sigma)
    assert is_dependency_preserving(partition.refine(augmentation), sigma)


def test_minimum_never_larger_than_greedy():
    sigma = [
        parse_cfd("([a] -> [b])"),
        parse_cfd("([a] -> [c])"),
        parse_cfd("([a] -> [d])"),
    ]
    partition = vp(["a"], ["b"], ["c"], ["d"])
    exact = minimum_refinement(partition, sigma)
    greedy = greedy_refinement(partition, sigma)
    assert augmentation_size(exact) <= augmentation_size(greedy)
    assert is_dependency_preserving(partition.refine(exact), sigma)


def test_max_size_raises_when_infeasible():
    sigma = [
        parse_cfd("([a] -> [b])"),
        parse_cfd("([c] -> [d])"),
    ]
    partition = vp(["a", "c"], ["b", "d"])
    with pytest.raises(ValueError):
        minimum_refinement(partition, sigma, max_size=1)


# -- Example 7 of the paper ----------------------------------------------------


def test_example7_partition_not_preserving():
    d0 = emp_instance()
    partition = VerticalPartition(d0.schema, emp_vertical_attribute_sets())
    assert not is_dependency_preserving(partition, emp_tableau_cfds())


def test_example7_papers_augmentation_is_preserving():
    """Paper: add CC, salary to DV1 and city to DV2 -> preserves Σ0."""
    d0 = emp_instance()
    partition = VerticalPartition(d0.schema, emp_vertical_attribute_sets())
    refined = partition.refine({"DV1": ["CC", "salary"], "DV2": ["city"]})
    assert is_dependency_preserving(refined, emp_tableau_cfds())


def test_example7_minimum_size_is_three():
    d0 = emp_instance()
    partition = VerticalPartition(d0.schema, emp_vertical_attribute_sets())
    augmentation = minimum_refinement(partition, emp_tableau_cfds())
    assert augmentation_size(augmentation) == 3
    assert is_dependency_preserving(
        partition.refine(augmentation), emp_tableau_cfds()
    )
