"""Unit tests for the predicate language and its satisfiability analysis."""

from repro.relational import (
    And,
    Eq,
    FalsePred,
    Ge,
    Gt,
    InSet,
    Le,
    Lt,
    Ne,
    Not,
    NotInSet,
    Or,
    Relation,
    Schema,
    TruePred,
    compatible_with_bindings,
    satisfiable,
)

R = Schema("R", ["a", "b"])
ROWS = Relation(R, [(1, "x"), (2, "y"), (3, "x")])


def matching(pred):
    return [row for row in ROWS if pred.evaluate(row, R)]


# -- evaluation ------------------------------------------------------------


def test_eq_ne():
    assert matching(Eq("a", 2)) == [(2, "y")]
    assert matching(Ne("b", "x")) == [(2, "y")]


def test_order_comparisons():
    assert matching(Lt("a", 2)) == [(1, "x")]
    assert matching(Le("a", 2)) == [(1, "x"), (2, "y")]
    assert matching(Gt("a", 2)) == [(3, "x")]
    assert matching(Ge("a", 3)) == [(3, "x")]


def test_order_comparison_incomparable_is_false():
    assert matching(Lt("b", 5)) == []  # str vs int


def test_sets():
    assert matching(InSet("a", {1, 3})) == [(1, "x"), (3, "x")]
    assert matching(NotInSet("a", {1, 3})) == [(2, "y")]


def test_boolean_combinators():
    pred = (Eq("b", "x") & Gt("a", 1)) | Eq("a", 2)
    assert matching(pred) == [(2, "y"), (3, "x")]
    assert matching(~Eq("b", "x")) == [(2, "y")]


def test_true_false():
    assert len(matching(TruePred())) == 3
    assert matching(FalsePred()) == []


# -- satisfiability ----------------------------------------------------------


def test_conflicting_equalities_unsat():
    assert not satisfiable(Eq("a", 1) & Eq("a", 2))


def test_equality_vs_disequality():
    assert not satisfiable(Eq("a", 1) & Ne("a", 1))
    assert satisfiable(Eq("a", 1) & Ne("a", 2))


def test_equality_vs_inset():
    assert satisfiable(Eq("a", 1) & InSet("a", {1, 2}))
    assert not satisfiable(Eq("a", 1) & InSet("a", {2, 3}))
    assert not satisfiable(Eq("a", 1) & NotInSet("a", {1}))


def test_equality_vs_ranges():
    assert satisfiable(Eq("a", 5) & Lt("a", 6) & Gt("a", 4))
    assert not satisfiable(Eq("a", 5) & Lt("a", 5))
    assert not satisfiable(Eq("a", 5) & Gt("a", 5))
    assert satisfiable(Eq("a", 5) & Le("a", 5) & Ge("a", 5))


def test_empty_range_unsat():
    assert not satisfiable(Gt("a", 5) & Lt("a", 4))
    assert not satisfiable(Gt("a", 5) & Lt("a", 5))
    assert satisfiable(Ge("a", 5) & Le("a", 5))


def test_inset_exhausted_by_disequalities():
    assert not satisfiable(InSet("a", {1, 2}) & Ne("a", 1) & Ne("a", 2))
    assert satisfiable(InSet("a", {1, 2, 3}) & Ne("a", 1))


def test_inset_vs_ranges():
    assert satisfiable(InSet("a", {1, 10}) & Gt("a", 5))
    assert not satisfiable(InSet("a", {1, 2}) & Gt("a", 5))


def test_disjunction_satisfiable_if_any_branch_is():
    pred = (Eq("a", 1) & Eq("a", 2)) | Eq("a", 3)
    assert satisfiable(pred)


def test_negation_normal_form_through_not():
    assert not satisfiable(Not(Ne("a", 1)) & Eq("a", 2))
    assert satisfiable(Not(Eq("a", 1)))


def test_different_attributes_independent():
    assert satisfiable(Eq("a", 1) & Eq("b", 2))


def test_conservative_on_incomparable_bounds():
    # Bounds over incomparable types cannot prove emptiness: stays SAT.
    assert satisfiable(Gt("a", "zzz") & Lt("a", 5))


# -- the F_i ∧ F_φ pruning test ---------------------------------------------


def test_compatible_with_bindings_basic():
    fragment_pred = Eq("a", 1)
    assert compatible_with_bindings(fragment_pred, {"a": 1})
    assert not compatible_with_bindings(fragment_pred, {"a": 2})
    assert compatible_with_bindings(fragment_pred, {"b": "x"})


def test_compatible_with_bindings_disjunction():
    fragment_pred = Eq("a", 1) | Eq("a", 2)
    assert compatible_with_bindings(fragment_pred, {"a": 2})
    assert not compatible_with_bindings(fragment_pred, {"a": 3})


def test_compatible_with_bindings_range_fragment():
    fragment_pred = Ge("a", 100) & Lt("a", 200)
    assert compatible_with_bindings(fragment_pred, {"a": 150})
    assert not compatible_with_bindings(fragment_pred, {"a": 250})


def test_compatible_with_empty_bindings_is_satisfiability():
    assert compatible_with_bindings(Eq("a", 1), {})
    assert not compatible_with_bindings(Eq("a", 1) & Eq("a", 2), {})
