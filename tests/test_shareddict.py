"""Shared-dictionary properties: cluster-global codes decode identically.

The whole point of :mod:`repro.relational.shareddict` is one invariant:
**equal values carry equal codes at every fragment of a cluster, and every
code decodes to the same value everywhere**.  The coded shipping of the
distributed detectors (and the coordinator-side merge on code pairs) is
only correct on top of it, so it is pinned here on random fragmentations —
through the cluster-aware column stores, the per-variable pair
dictionaries, and the whole-combination dictionaries of CLUSTDETECT.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core import normalize
from repro.detect.base import (
    partition_cluster,
    partition_fragment_summary,
)
from repro.partition import partition_uniform
from repro.relational import (
    Relation,
    Schema,
    SharedComboDictionary,
    SharedDictionary,
    SharedPairDictionary,
    column_store,
)

ATTRS = ("a", "b", "c")
SCHEMA = Schema("R", ("id",) + ATTRS, key=("id",))
VALUES = [0, 1, "x", "y"]

rows = st.lists(
    st.tuples(*[st.sampled_from(VALUES) for _ in ATTRS]),
    min_size=1,
    max_size=24,
)

SETTINGS = settings(max_examples=80, deadline=None)


@st.composite
def fragmented(draw):
    body = draw(rows)
    relation = Relation(SCHEMA, [(i,) + r for i, r in enumerate(body)])
    n_sites = draw(st.integers(1, 4))
    return relation, partition_uniform(relation, n_sites)


@SETTINGS
@given(fragmented())
def test_cluster_interned_codes_decode_identically_on_every_fragment(data):
    """A code obtained at any fragment decodes to one value cluster-wide."""
    relation, cluster = data
    shared = SharedDictionary()
    stores = [shared.store_for(site.fragment) for site in cluster.sites]
    for attribute in ATTRS:
        columns = [store.column(attribute) for store in stores]
        table = shared.column(attribute)
        for site, column in zip(cluster.sites, columns):
            position = SCHEMA.position(attribute)
            for row, code in zip(site.fragment.rows, column.codes):
                # encode/decode round-trips through the *global* table
                assert table.values[code] == row[position]
                assert table.code_of[row[position]] == code
        # equal values ⇒ equal codes across fragments (and vice versa)
        decoded = {
            code: value for value in table.code_of for code in [table.code_of[value]]
        }
        assert len(decoded) == len(table.values)


@SETTINGS
@given(fragmented())
def test_pair_dictionary_translations_decode_fragment_combos(data):
    """Per-fragment translations decode back to each fragment's combos."""
    relation, cluster = data
    attributes = ("a", "b", "c")
    lhs_width = 2
    shared = SharedPairDictionary(lhs_width)
    for i, site in enumerate(cluster.sites):
        distincts = column_store(site.fragment).key_column(attributes).values
        pairs = shared.translate(i, distincts)
        assert pairs == shared.pairs_for(i)  # memoized
        for combo, (x_code, y_code) in zip(distincts, pairs):
            assert shared.x_values[x_code] == combo[:lhs_width]
            assert shared.y_values[y_code] == combo[lhs_width:]
    # global injectivity: distinct X projections ↔ distinct codes
    assert len(shared.x_values) == len(shared.x_code_of)
    assert len(set(shared.x_values)) == len(shared.x_values)


@SETTINGS
@given(fragmented())
def test_combo_dictionary_decodes_identically(data):
    relation, cluster = data
    attributes = ("a", "c")
    shared = SharedComboDictionary()
    for i, site in enumerate(cluster.sites):
        distincts = column_store(site.fragment).key_column(attributes).values
        codes = shared.translate(i, distincts)
        for combo, code in zip(distincts, codes):
            assert shared.values[code] == combo
    assert len(set(shared.values)) == len(shared.values)


def test_partition_cluster_shares_one_dictionary_across_sites():
    """partition_cluster interns all fragments into one cached dictionary."""
    relation = Relation(
        SCHEMA, [(i, i % 2, i % 3, "x") for i in range(12)]
    )
    cluster = partition_uniform(relation, 3)
    from repro.core import CFD

    cfd = CFD(["a", "b"], ["c"], name="phi")
    (variable,) = normalize(cfd).variables
    partitions, _ = partition_cluster(cluster, variable)
    shared = partitions[0].shared
    assert all(part.shared is shared for part in partitions)
    # equal (X, A) combos at different sites translate to the same pair
    seen: dict[tuple, tuple[int, int]] = {}
    for i, part in enumerate(partitions):
        distincts = column_store(part.site.fragment).key_column(
            variable.attributes
        ).values
        for combo, pair in zip(distincts, part.pairs):
            assert seen.setdefault(combo, pair) == pair
    # repeat detections reuse the cached dictionary and translations
    again, _ = partition_cluster(cluster, variable)
    assert again[0].shared is shared
    assert all(a.pairs is b.pairs for a, b in zip(again, partitions))


def test_fragment_summary_counts_match_bucket_rows():
    """Bucket row counts equal the σ-matched rows of the fragment."""
    relation = Relation(
        SCHEMA, [(i, i % 2, i % 2, i % 4) for i in range(16)]
    )
    from repro.core import CFD, PatternTuple, WILDCARD, pattern_index

    cfd = CFD(
        ["a", "b"],
        ["c"],
        [PatternTuple([0, WILDCARD], [WILDCARD])],
        name="phi",
    )
    (variable,) = normalize(cfd).variables
    counts, bucket_codes, values = partition_fragment_summary(
        relation, variable
    )
    index = pattern_index(variable.patterns)
    expected = sum(
        1
        for row in relation.rows
        if index.matches_any(tuple(row[SCHEMA.position(a)] for a in variable.lhs))
    )
    assert sum(counts) == expected
    assert values == column_store(relation).key_column(variable.attributes).values
    for count, codes in zip(counts, bucket_codes):
        assert (count == 0) == (not codes)
