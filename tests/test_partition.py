"""Unit tests for horizontal and vertical partitioning."""

import pytest

from repro.distributed import Cluster, Site
from repro.partition import (
    PartitionError,
    VerticalPartition,
    partition_by_attribute,
    partition_by_hash,
    partition_by_predicates,
    partition_uniform,
    vertical_partition,
)
from repro.relational import Eq, Gt, Le, Relation, Schema

S = Schema("R", ["id", "kind", "x"], key=["id"])
ROWS = [(i, "even" if i % 2 == 0 else "odd", i * 10) for i in range(10)]
REL = Relation(S, ROWS)


# -- horizontal ---------------------------------------------------------------


def test_predicates_partition_disjoint_cover():
    cluster = partition_by_predicates(REL, [Eq("kind", "even"), Eq("kind", "odd")])
    assert cluster.n_sites == 2
    assert cluster.total_tuples() == len(REL)
    assert cluster.reconstruct() == REL


def test_predicates_overlapping_rejected_when_strict():
    with pytest.raises(PartitionError):
        partition_by_predicates(REL, [Gt("x", -1), Eq("kind", "even")])


def test_predicates_non_covering_rejected_when_strict():
    with pytest.raises(PartitionError):
        partition_by_predicates(REL, [Eq("kind", "even")])


def test_predicates_lenient_mode_keeps_first_match():
    cluster = partition_by_predicates(
        REL, [Le("x", 40), Gt("x", 40)], strict=False
    )
    assert cluster.total_tuples() == len(REL)


def test_sites_carry_their_predicates():
    predicate = Eq("kind", "even")
    cluster = partition_by_predicates(REL, [predicate, Eq("kind", "odd")])
    assert cluster.sites[0].predicate is predicate


def test_partition_by_attribute_one_site_per_value():
    cluster = partition_by_attribute(REL, "kind")
    assert cluster.n_sites == 2
    assert {site.name for site in cluster.sites} == {"kind=even", "kind=odd"}
    assert cluster.reconstruct() == REL


def test_partition_uniform_balance():
    cluster = partition_uniform(REL, 3)
    sizes = [len(site.fragment) for site in cluster.sites]
    assert sum(sizes) == 10
    assert max(sizes) - min(sizes) <= 1
    assert cluster.reconstruct() == REL


def test_partition_uniform_more_sites_than_rows():
    cluster = partition_uniform(REL, 20)
    assert cluster.n_sites == 20
    assert cluster.total_tuples() == 10


def test_partition_uniform_invalid():
    with pytest.raises(PartitionError):
        partition_uniform(REL, 0)


def test_partition_by_hash_deterministic_cover():
    cluster = partition_by_hash(REL, ["kind"], 4)
    assert cluster.total_tuples() == 10
    assert cluster.reconstruct() == REL
    # all rows with equal hash attributes land together
    homes = {
        row[1]: site.index
        for site in cluster.sites
        for row in site.fragment.rows
    }
    for site in cluster.sites:
        for row in site.fragment.rows:
            assert homes[row[1]] == site.index


def test_cluster_rejects_mixed_schemas():
    other = Relation(Schema("Q", ["a"]), [(1,)])
    with pytest.raises(ValueError):
        Cluster([Site(0, REL), Site(1, other)])


def test_cluster_rejects_empty():
    with pytest.raises(ValueError):
        Cluster([])


# -- vertical -----------------------------------------------------------------


def test_vertical_partition_adds_key_everywhere():
    partition = VerticalPartition(S, {"V1": ["kind"], "V2": ["x"]})
    assert partition.attributes_of("V1") == ("id", "kind")
    assert partition.attributes_of("V2") == ("id", "x")


def test_vertical_partition_must_cover():
    with pytest.raises(PartitionError):
        VerticalPartition(S, {"V1": ["kind"]})


def test_vertical_partition_covers_lookup():
    partition = VerticalPartition(S, {"V1": ["kind", "x"], "V2": ["x"]})
    assert partition.covers(["kind", "x"]) == "V1"
    assert partition.covers(["id", "x"]) in {"V1", "V2"}
    assert partition.covers(["kind", "nope"]) is None


def test_vertical_refine_adds_attributes():
    partition = VerticalPartition(S, {"V1": ["kind"], "V2": ["x"]})
    refined = partition.refine({"V2": ["kind"]})
    assert partition.covers(["kind", "x"]) is None
    assert refined.covers(["kind", "x"]) == "V2"


def test_vertical_deploy_and_reconstruct():
    cluster = vertical_partition(REL, {"V1": ["kind"], "V2": ["x"]})
    assert cluster.n_sites == 2
    assert cluster.reconstruct() == REL


def test_vertical_fragment_order_follows_schema():
    cluster = vertical_partition(REL, {"V1": ["x", "kind"]})
    assert cluster.fragment(0).schema.attributes == ("id", "kind", "x")


def test_vertical_sites_with_attributes():
    cluster = vertical_partition(REL, {"V1": ["kind"], "V2": ["x", "kind"]})
    holders = cluster.sites_with_attributes(["kind", "x"])
    assert [site.name for site in holders] == ["V2"]


def test_fragment_schemas_keyed():
    partition = VerticalPartition(S, {"V1": ["kind"], "V2": ["x"]})
    schemas = partition.fragment_schemas()
    assert schemas["V1"].key == ("id",)
