"""Every worked example of the paper, pinned against the Fig. 1 data.

These tests are the ground truth of the reproduction: each asserts a claim
the paper makes verbatim (Examples 1–7, Propositions 5, Lemma 6 coordinator
and shipment counts of Examples 5–6).
"""

import pytest

from repro.core import detect_violations, normalize, satisfies
from repro.datagen import (
    EXAMPLE1_VIOLATING_IDS,
    emp_cfds,
    emp_horizontal_predicates,
    emp_instance,
    emp_tableau_cfds,
    emp_vertical_attribute_sets,
)
from repro.detect import (
    clust_detect,
    ctr_detect,
    is_constant_cfd,
    naive_detect,
    pat_detect_rt,
    pat_detect_s,
    seq_detect,
    vertical_detect,
)
from repro.partition import (
    VerticalPartition,
    partition_by_predicates,
    vertical_partition,
)

# the paper's worked examples must hold on every detection engine
pytestmark = pytest.mark.usefixtures("detection_engine")


@pytest.fixture(scope="module")
def d0():
    return emp_instance()


@pytest.fixture(scope="module")
def horizontal(d0):
    predicates = emp_horizontal_predicates()
    return partition_by_predicates(
        d0, list(predicates.values()), names=list(predicates)
    )


@pytest.fixture(scope="module")
def phis():
    return emp_tableau_cfds()


# -- Example 1 ----------------------------------------------------------------


def test_example1_violations_are_t2_to_t6_t8_t9(d0):
    report = detect_violations(d0, emp_cfds())
    assert {key[0] for key in report.tuple_keys} == set(EXAMPLE1_VIOLATING_IDS)


def test_example1_d0_satisfies_cfd3(d0):
    cfd3 = emp_cfds()[2]
    assert satisfies(d0, cfd3)
    assert not detect_violations(d0, cfd3)


def test_example1_each_rule_catches_expected_tuples(d0):
    cfd1, cfd2, cfd3, cfd4, cfd5 = emp_cfds()
    assert {k[0] for k in detect_violations(d0, cfd1).tuple_keys} == {2, 3, 4, 5}
    assert {k[0] for k in detect_violations(d0, cfd2).tuple_keys} == {8, 9}
    assert {k[0] for k in detect_violations(d0, cfd4).tuple_keys} == {2, 3}
    assert {k[0] for k in detect_violations(d0, cfd5).tuple_keys} == {6}


# -- Example 2: the tableau forms are equivalent ------------------------------


def test_example2_tableau_cfds_equivalent_to_rules(d0, phis):
    by_rules = detect_violations(d0, emp_cfds())
    by_tableaux = detect_violations(d0, phis)
    assert by_rules.tuple_keys == by_tableaux.tuple_keys


def test_example2_phi2_expresses_the_fd(phis):
    phi2 = phis[1]
    assert phi2.is_fd()


# -- Example 3 / Proposition 5: constant CFDs ---------------------------------


def test_example3_phi3_is_constant_phi1_phi2_are_variable(phis):
    phi1, phi2, phi3 = phis
    assert is_constant_cfd(phi3)
    assert not is_constant_cfd(phi1)
    assert not is_constant_cfd(phi2)


def test_example4_constant_cfds_checked_locally_no_shipment(horizontal, phis):
    phi3 = phis[2]
    outcome = ctr_detect(horizontal, phi3)
    assert outcome.tuples_shipped == 0
    # ψ1 catches t2, t3; ψ2 catches t6 — found locally.
    assert {k[0] for k in outcome.report.tuple_keys} == {2, 3, 6}


# -- Example 5: CTRDETECT picks S2 and ships four tuples ----------------------


def test_example5_ctrdetect_coordinator_and_shipment(horizontal, phis):
    phi1 = phis[0]
    outcome = ctr_detect(horizontal, phi1)
    # S2 (index 1) has four matching tuples (all of DH2 except t7).
    assert outcome.details["coordinators"]["phi1"] == 1
    assert outcome.tuples_shipped == 4


# -- Example 6: per-pattern coordinators ship three tuples --------------------


def test_example6_patdetect_coordinators_and_shipment(horizontal, phis):
    phi1 = phis[0]
    outcome = pat_detect_s(horizontal, phi1)
    # S2 coordinates pattern (44, _), S1 coordinates (31, _).
    assert outcome.details["coordinators"]["phi1"] == [1, 0]
    assert outcome.tuples_shipped == 3


def test_example6_patdetect_beats_ctrdetect_on_shipment(horizontal, phis):
    phi1 = phis[0]
    assert (
        pat_detect_s(horizontal, phi1).tuples_shipped
        < ctr_detect(horizontal, phi1).tuples_shipped
    )


# -- all algorithms agree with the centralized detector -----------------------


@pytest.mark.parametrize(
    "algorithm", [ctr_detect, pat_detect_s, pat_detect_rt]
)
def test_single_cfd_algorithms_match_centralized(
    d0, horizontal, phis, algorithm
):
    for phi in phis:
        expected = detect_violations(d0, phi).violations
        assert algorithm(horizontal, phi).report.violations == expected


def test_multi_cfd_algorithms_match_centralized(d0, horizontal, phis):
    expected = detect_violations(d0, phis).violations
    assert seq_detect(horizontal, phis).report.violations == expected
    assert clust_detect(horizontal, phis).report.violations == expected
    assert naive_detect(horizontal, phis).report.violations == expected


def test_each_tuple_shipped_at_most_once_per_cfd(horizontal, phis):
    # Fig. 1(b) fragments hold 4/5/1 tuples; for a single CFD no algorithm
    # may ship more tuples than exist.
    for phi in phis:
        for algorithm in (ctr_detect, pat_detect_s, pat_detect_rt):
            assert algorithm(horizontal, phi).tuples_shipped <= 10


# -- vertical partition of Example 1 ------------------------------------------


def test_vertical_fragments_reconstruct_d0(d0):
    cluster = vertical_partition(d0, emp_vertical_attribute_sets())
    assert cluster.reconstruct() == d0


def test_example1_no_cfd_checkable_in_vertical_partition(d0, phis):
    """Example 1(b): inspecting any of cfd1–cfd5 needs data shipment."""
    partition = VerticalPartition(d0.schema, emp_vertical_attribute_sets())
    for phi in phis:
        assert partition.covers(phi.attributes) is None


def test_vertical_detection_matches_centralized(d0, phis):
    cluster = vertical_partition(d0, emp_vertical_attribute_sets())
    expected = detect_violations(d0, phis).violations
    outcome = vertical_detect(cluster, phis)
    assert outcome.report.violations == expected
    assert outcome.tuples_shipped > 0  # shipment is unavoidable here
