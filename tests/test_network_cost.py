"""Unit tests for the shipment log and the Section III-B cost model."""

import math

import pytest

from repro.distributed import (
    CostBreakdown,
    CostModel,
    ShipmentLog,
    StageTimes,
    combine_breakdowns,
    pipeline_response,
)


# -- ShipmentLog --------------------------------------------------------------


def test_ship_accumulates_matrix():
    log = ShipmentLog()
    log.ship(0, 1, 5, 15, tag="a")
    log.ship(0, 2, 3, 9, tag="a")
    log.ship(1, 2, 2, 6, tag="b")
    assert log.tuples_shipped == 10
    assert log.cells_shipped == 30
    assert log.matrix() == {(0, 1): 5, (0, 2): 3, (1, 2): 2}
    assert log.received_by(0) == 8
    assert log.outgoing_by_source() == {1: 5, 2: 5}


def test_ship_zero_tuples_is_noop():
    log = ShipmentLog()
    log.ship(0, 1, 0, 0)
    assert log.tuples_shipped == 0
    assert not log.events


def test_ship_to_self_rejected():
    log = ShipmentLog()
    with pytest.raises(ValueError):
        log.ship(1, 1, 5, 5)


def test_negative_shipment_rejected():
    log = ShipmentLog()
    with pytest.raises(ValueError):
        log.ship(0, 1, -1, 0)


def test_control_messages_tracked_separately():
    log = ShipmentLog()
    log.record_control(12)
    log.ship(0, 1, 5, 5)
    assert log.control_messages == 12
    assert log.tuples_shipped == 5  # control traffic not counted as tuples


def test_merge():
    a, b = ShipmentLog(), ShipmentLog()
    a.ship(0, 1, 5, 5, tag="x")
    b.ship(0, 1, 2, 2, tag="x")
    b.record_control(3)
    a.merge(b)
    assert a.tuples_shipped == 7
    assert a.control_messages == 3
    assert a.by_tag() == {"x": 7}


# -- CostModel ----------------------------------------------------------------


def test_transfer_time_is_max_over_sources():
    model = CostModel(transfer_rate=10.0, packet_size=2)
    # site 1 sends 40 tuples = 20 packets -> 2s; site 2 sends 10 -> 0.5s
    assert model.transfer_time({1: 40, 2: 10}) == pytest.approx(2.0)


def test_transfer_time_empty():
    assert CostModel().transfer_time({}) == 0.0


def test_check_ops_matches_paper_formula():
    model = CostModel()
    assert model.check_ops(0) == 0.0
    assert model.check_ops(100) == pytest.approx(100 * math.log2(101))
    assert model.check_ops(100, n_queries=3) == pytest.approx(
        3 * 100 * math.log2(101)
    )


def test_scan_and_check_time_scale_with_rates():
    model = CostModel(scan_rate=100.0, check_rate=10.0)
    assert model.scan_time(50) == pytest.approx(0.5)
    assert model.check_time(25.0) == pytest.approx(2.5)


# -- pipeline (flow shop) -----------------------------------------------------


def test_pipeline_single_job_is_sum():
    assert pipeline_response([(1.0, 2.0, 3.0)]) == pytest.approx(6.0)


def test_pipeline_overlaps_stages():
    # Two identical jobs: second starts scanning while first transfers.
    jobs = [(1.0, 1.0, 1.0), (1.0, 1.0, 1.0)]
    assert pipeline_response(jobs) == pytest.approx(4.0)  # not 6.0


def test_pipeline_bottleneck_stage_dominates():
    jobs = [(0.1, 5.0, 0.1)] * 3
    # ~ first scan + 3 transfers + last check
    assert pipeline_response(jobs) == pytest.approx(0.1 + 15.0 + 0.1)


def test_pipeline_never_faster_than_any_stage_sum():
    jobs = [(1.0, 0.5, 2.0), (0.3, 4.0, 0.2)]
    makespan = pipeline_response(jobs)
    for stage in range(3):
        assert makespan >= sum(job[stage] for job in jobs) - 1e-12


def test_pipeline_mismatched_widths_rejected():
    with pytest.raises(ValueError):
        pipeline_response([(1.0, 2.0), (1.0, 2.0, 3.0)])


def test_pipeline_empty():
    assert pipeline_response([]) == 0.0


# -- CostBreakdown ------------------------------------------------------------


def test_breakdown_response_equals_sum_for_one_stage():
    breakdown = CostBreakdown(stages=[StageTimes(1.0, 2.0, 3.0)])
    assert breakdown.response_time == pytest.approx(6.0)
    assert breakdown.sequential_time == pytest.approx(6.0)


def test_breakdown_pipelined_leq_sequential():
    breakdown = CostBreakdown(
        stages=[StageTimes(1.0, 1.0, 1.0), StageTimes(2.0, 0.5, 1.0)]
    )
    assert breakdown.response_time <= breakdown.sequential_time


def test_combine_breakdowns_concatenates():
    a = CostBreakdown(stages=[StageTimes(1, 1, 1)])
    b = CostBreakdown(stages=[StageTimes(2, 2, 2)])
    combined = combine_breakdowns([a, b])
    assert len(combined.stages) == 2
    assert combined.scan_time == 3.0


# -- CostModel.payload_bytes --------------------------------------------------


def test_payload_bytes_empty_log_is_zero():
    assert CostModel().payload_bytes(ShipmentLog()) == 0.0


def test_payload_bytes_uncoded_charges_value_bytes_per_cell():
    model = CostModel(value_bytes=8.0, code_bytes=4.0)
    log = ShipmentLog()
    log.ship(0, 1, 5, 20)  # 5 tuples, 20 raw cells, uncoded
    assert model.payload_bytes(log) == 20 * 8.0


def test_payload_bytes_codes_only_charges_code_bytes():
    model = CostModel(value_bytes=8.0, code_bytes=4.0)
    log = ShipmentLog()
    log.ship(0, 1, 5, 20, n_codes=10)
    assert model.payload_bytes(log) == 10 * 4.0


def test_payload_bytes_mixed_cells_and_codes():
    model = CostModel(value_bytes=8.0, code_bytes=4.0)
    log = ShipmentLog()
    log.ship(0, 1, 5, 20)              # raw: 160 bytes
    log.ship(0, 2, 5, 20, n_codes=10)  # coded: 40 bytes
    assert model.payload_bytes(log) == 160.0 + 40.0
    assert log.codes_shipped == 20 + 10


def test_payload_bytes_counts_incremental_delta_shipments():
    """Delta shipments (3 ints per changed pair) show the coded saving."""
    model = CostModel(value_bytes=8.0, code_bytes=4.0)
    full = ShipmentLog()
    full.ship(0, 1, 1000, 4000, n_codes=2 * 1000, tag="phi#p0")
    delta = ShipmentLog()
    delta.ship(0, 1, 10, 40, n_codes=3 * 10, tag="phi#p0Δ")
    assert model.payload_bytes(delta) == 30 * 4.0
    assert model.payload_bytes(delta) < model.payload_bytes(full) / 50
